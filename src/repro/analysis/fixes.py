"""Machine-applicable repairs: span-anchored text edits behind ``lint --fix``.

A :class:`Fix` is a titled bundle of :class:`TextEdit` objects, each
anchored to a :class:`~repro.datalog.spans.Span` of the *original* rule
text.  Diagnostics whose defect is mechanical — a duplicate rule, a
shadowed aggregate variable, an unrestricted ``=`` over an aggregate with
no empty value — attach a fix; :func:`fix_text` drives lint → apply →
re-lint to a fixpoint, so one repair enabling another (or shifting spans)
is handled by simply linting again.

Edits are applied on byte offsets computed from the span's 1-based
inclusive line/column coordinates; replacement text for whole subgoals,
rules and declarations is produced by the AST pretty-printers (``str()``
of the rewritten node), whose output the parser round-trips — the
property test in ``tests/test_pretty.py`` is what licenses this.

Only *safe* fixes (behaviour-preserving or restoring the intended
semantics per the diagnostic's definition) are applied automatically;
the flag exists so future speculative repairs can ride the same
machinery without being auto-applied.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.datalog.atoms import (
    AggregateSubgoal,
    Atom,
    AtomSubgoal,
    BuiltinSubgoal,
    Subgoal,
)
from repro.datalog.program import PredicateDecl, Program
from repro.datalog.rules import Rule
from repro.datalog.spans import Span
from repro.datalog.terms import Variable, expr_variable_set

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.analysis.diagnostics import Diagnostic


@dataclass(frozen=True)
class TextEdit:
    """Replace the text under ``span`` with ``replacement``.

    ``delete_lines=True`` widens the region to whole source lines
    (including the trailing newline) — used when removing a rule or a
    declaration, so no blank husk is left behind.
    """

    span: Span
    replacement: str
    delete_lines: bool = False

    def offsets(self, line_starts: Sequence[int]) -> Tuple[int, int]:
        """(start, end) byte offsets of the region, end exclusive."""
        start = line_starts[self.span.line - 1] + self.span.column - 1
        end = line_starts[self.span.end_line - 1] + self.span.end_column
        if self.delete_lines:
            start = line_starts[self.span.line - 1]
            if self.span.end_line < len(line_starts):
                end = line_starts[self.span.end_line]
            else:
                end = line_starts[-1]
        return start, end


@dataclass(frozen=True)
class Fix:
    """One titled repair: a set of edits that must be applied together."""

    title: str
    edits: Tuple[TextEdit, ...]
    #: Safe fixes restore the diagnostic's intended semantics and are
    #: applied by ``lint --fix``; unsafe ones would only be suggested.
    safe: bool = True

    def to_dict(self) -> dict:
        return {
            "title": self.title,
            "safe": self.safe,
            "edits": [
                {
                    "span": e.span.to_dict(),
                    "replacement": e.replacement,
                    "delete_lines": e.delete_lines,
                }
                for e in self.edits
            ],
        }


class EditConflictError(ValueError):
    """Two edits in one application batch overlap."""


def _line_starts(text: str) -> List[int]:
    """Byte offset of each line start, plus a sentinel at end-of-text."""
    starts = [0]
    for index, ch in enumerate(text):
        if ch == "\n":
            starts.append(index + 1)
    starts.append(len(text))
    return starts


def apply_edits(text: str, edits: Sequence[TextEdit]) -> str:
    """Apply non-overlapping edits to ``text`` (raises on overlap)."""
    starts = _line_starts(text)
    resolved = sorted(
        ((e.offsets(starts), e) for e in edits), key=lambda item: item[0]
    )
    previous_end = -1
    for (start, end), edit in resolved:
        if start < previous_end:
            raise EditConflictError(
                f"edit at {edit.span} overlaps an earlier edit"
            )
        previous_end = end
    out = text
    for (start, end), edit in reversed(resolved):
        out = out[:start] + edit.replacement + out[end:]
    return out


def select_nonoverlapping(fixes: Sequence[Fix]) -> List[Fix]:
    """A maximal prefix-greedy subset of safe fixes whose edits don't
    collide; the rest are picked up by the next lint round."""
    chosen: List[Fix] = []
    edits: List[TextEdit] = []
    for fix in fixes:
        if not fix.safe:
            continue
        candidate = edits + list(fix.edits)
        try:
            # Cheap validation: offsets need the text, so collisions are
            # approximated by span ordering on (line, column) pairs.
            _check_span_overlap(candidate)
        except EditConflictError:
            continue
        chosen.append(fix)
        edits = candidate
    return chosen


def _check_span_overlap(edits: Sequence[TextEdit]) -> None:
    def key(edit: TextEdit) -> Tuple[int, int, int, int]:
        s = edit.span
        if edit.delete_lines:
            return (s.line, 1, s.end_line + 1, 0)
        return (s.line, s.column, s.end_line, s.end_column + 1)

    ordered = sorted(edits, key=key)
    for before, after in zip(ordered, ordered[1:]):
        b, a = key(before), key(after)
        if (b[2], b[3]) > (a[0], a[1]):
            raise EditConflictError(
                f"edit at {after.span} overlaps an earlier edit"
            )


# ---------------------------------------------------------------------------
# Fix constructors, used by the checks in repro.analysis.diagnostics
# ---------------------------------------------------------------------------


def fix_restrict_aggregate(
    rule: Rule, sg: AggregateSubgoal
) -> Optional[Fix]:
    """Rewrite ``C = f{...}`` to the restricted ``C =r f{...}`` form."""
    if sg.span is None:
        return None
    restricted = dataclasses.replace(sg, restricted=True)
    return Fix(
        title=f"use the restricted form: {restricted}",
        edits=(TextEdit(sg.span, str(restricted)),),
    )


def fix_delete_rule(rule: Rule) -> Optional[Fix]:
    """Remove a (duplicate) rule, whole lines included."""
    if rule.span is None:
        return None
    return Fix(
        title=f"delete duplicate rule {rule}",
        edits=(TextEdit(rule.span, "", delete_lines=True),),
    )


def fix_delete_declaration(decl: PredicateDecl) -> Optional[Fix]:
    """Remove an unused explicit declaration, whole lines included."""
    if decl.span is None:
        return None
    return Fix(
        title=f"delete unused declaration of {decl.name}/{decl.arity}",
        edits=(TextEdit(decl.span, "", delete_lines=True),),
    )


def fix_declare_default(
    program: Program, predicates: Sequence[str]
) -> Optional[Fix]:
    """Turn ``@cost p/n : l.`` into ``@default p/n : l.`` for each named
    predicate (gives the pseudo-monotonic aggregate its fixed fan-in)."""
    edits: List[TextEdit] = []
    names: List[str] = []
    for name in sorted(set(predicates)):
        decl = program.declarations.get(name)
        if (
            decl is None
            or decl.span is None
            or decl.lattice is None
            or decl.has_default
        ):
            continue
        edits.append(
            TextEdit(
                decl.span,
                f"@default {decl.name}/{decl.arity} : {decl.lattice.name}.",
            )
        )
        names.append(name)
    if not edits:
        return None
    return Fix(
        title="declare default values for " + ", ".join(names),
        edits=tuple(edits),
    )


def _fresh_variable(taken: FrozenSet[Variable], base: Variable) -> Variable:
    candidate = Variable(base.name + "_inner")
    suffix = 2
    while candidate in taken:
        candidate = Variable(f"{base.name}_inner{suffix}")
        suffix += 1
    return candidate


def _rename_in_atom(atom: Atom, old: Variable, new: Variable) -> Atom:
    args = tuple(new if arg == old else arg for arg in atom.args)
    return dataclasses.replace(atom, args=args)


def fix_rename_shadowed(
    rule: Rule, sg: AggregateSubgoal, shadowed: Variable
) -> Optional[Fix]:
    """Rename the *inner* occurrences of a shadowed aggregate variable.

    For a multiset variable that leaked outside (becoming a grouping
    variable) or a result variable recurring inside the conjuncts, the
    almost-certain intent was a private inner variable; renaming inside
    the subgoal restores Definition 2.4's split without touching the rest
    of the rule.
    """
    if sg.span is None:
        return None
    fresh = _fresh_variable(rule.variable_set(), shadowed)
    conjuncts = tuple(
        _rename_in_atom(c, shadowed, fresh) for c in sg.conjuncts
    )
    multiset_var = sg.multiset_var
    if multiset_var == shadowed:
        multiset_var = fresh
    renamed = dataclasses.replace(
        sg, multiset_var=multiset_var, conjuncts=conjuncts
    )
    return Fix(
        title=f"rename inner {shadowed} to {fresh}: {renamed}",
        edits=(TextEdit(sg.span, str(renamed)),),
    )


def fix_reorder_body(rule: Rule, program: Program) -> Optional[Fix]:
    """Rewrite the rule with its body in evaluable (scheduled) order."""
    if rule.span is None:
        return None
    ordered = body_in_schedule_order(rule, program)
    if ordered is None or list(ordered) == list(rule.body):
        return None
    reordered = dataclasses.replace(rule, body=tuple(ordered))
    return Fix(
        title=f"reorder body left-to-right: {reordered}",
        edits=(TextEdit(rule.span, str(reordered)),),
    )


# ---------------------------------------------------------------------------
# Left-to-right evaluability (feeds the MAD507 lint)
# ---------------------------------------------------------------------------


def _newly_bound(
    sg: Subgoal, bound: Set[Variable], rule: Rule, program: Program
) -> Optional[Set[Variable]]:
    """Variables the subgoal binds if evaluable under ``bound``, else None.

    Mirrors the readiness conditions of
    :func:`repro.engine.grounding.schedule` — the single source of truth
    for *whether an order exists*; this lint only asks whether the
    *written* order is one of them.
    """
    if isinstance(sg, AtomSubgoal):
        decl = program.decl(sg.atom.predicate)
        atom_vars = set(sg.atom.variables())
        if sg.negated:
            return set() if atom_vars <= bound else None
        if decl.has_default:
            key_vars = {
                a
                for a in sg.atom.args[: decl.key_arity]
                if isinstance(a, Variable)
            }
            return (atom_vars - bound) if key_vars <= bound else None
        return atom_vars - bound
    if isinstance(sg, BuiltinSubgoal):
        lhs_vars = expr_variable_set(sg.lhs)
        rhs_vars = expr_variable_set(sg.rhs)
        if lhs_vars | rhs_vars <= bound:
            return set()
        if sg.op == "=":
            if (
                isinstance(sg.lhs, Variable)
                and sg.lhs not in bound
                and rhs_vars <= bound
            ):
                return {sg.lhs}
            if (
                isinstance(sg.rhs, Variable)
                and sg.rhs not in bound
                and lhs_vars <= bound
            ):
                return {sg.rhs}
        return None
    if isinstance(sg, AggregateSubgoal):
        grouping = rule.grouping_variables(sg)
        newly: Set[Variable] = set()
        if isinstance(sg.result, Variable) and sg.result not in bound:
            newly.add(sg.result)
        if grouping <= bound:
            return newly
        if sg.restricted:
            return newly | (grouping - bound)
        return None
    raise TypeError(f"unknown subgoal type {type(sg).__name__}")


def is_left_to_right_evaluable(rule: Rule, program: Program) -> bool:
    """True iff the body can be evaluated in its written order."""
    bound: Set[Variable] = set()
    for sg in rule.body:
        newly = _newly_bound(sg, bound, rule, program)
        if newly is None:
            return False
        bound |= newly
    return True


def body_in_schedule_order(
    rule: Rule, program: Program
) -> Optional[List[Subgoal]]:
    """The engine's static join order, or None if no order exists."""
    from repro.datalog.errors import SafetyError

    # Lazy import: the engine imports analysis modules at load time.
    from repro.engine.grounding import schedule

    try:
        return list(schedule(rule, program))
    except SafetyError:
        return None


# ---------------------------------------------------------------------------
# The --fix driver
# ---------------------------------------------------------------------------


@dataclass
class FixResult:
    """What :func:`fix_text` did to one source text."""

    original: str
    text: str
    applied: List[str] = field(default_factory=list)
    rounds: int = 0
    #: Diagnostics of the final text (for exit-code / reporting purposes).
    remaining: List["Diagnostic"] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return self.text != self.original


def fix_text(
    text: str,
    *,
    name: str = "<string>",
    max_rounds: int = 10,
) -> FixResult:
    """Lint ``text``, apply every safe fix, and repeat to a fixpoint.

    Each round re-lints the current text so spans are always fresh;
    conflicting fixes are deferred to a later round by
    :func:`select_nonoverlapping`.  Stops when a round applies nothing,
    when the text stops changing, or after ``max_rounds``.
    """
    from repro.analysis.diagnostics import lint_source

    result = FixResult(original=text, text=text)
    for _ in range(max_rounds):
        diagnostics = lint_source(result.text, name=name)
        fixes = [f for d in diagnostics for f in d.fixes]
        chosen = select_nonoverlapping(fixes)
        if not chosen:
            result.remaining = diagnostics
            return result
        edits = [e for f in chosen for e in f.edits]
        new_text = apply_edits(result.text, edits)
        result.rounds += 1
        if new_text == result.text:
            result.remaining = diagnostics
            return result
        result.text = new_text
        result.applied.extend(f.title for f in chosen)
    result.remaining = lint_source(result.text, name=name)
    return result


def render_diff(result: FixResult, name: str) -> str:
    """A unified diff of what ``--fix`` would change."""
    import difflib

    return "".join(
        difflib.unified_diff(
            result.original.splitlines(keepends=True),
            result.text.splitlines(keepends=True),
            fromfile=name,
            tofile=f"{name} (fixed)",
        )
    )


_FixMap = Dict[int, List[Fix]]
