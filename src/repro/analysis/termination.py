"""Termination of bottom-up evaluation (Section 6.2).

Safety guarantees finiteness of each ``T_P`` application, not of the
iteration: the ascending chain may be infinite when cost values can climb
forever (halfsum, Example 5.1).  Section 6.2 gives sufficient conditions
for termination, implemented here per component:

* **finite lattices** — the chain of interpretations over finitely many
  keys (Lemma 2.2) and finitely many values must close;
* **well-founded ascending order on the reachable values** — for
  function-free programs whose cost arithmetic cannot ascend forever:
  integers under the ``min`` order (⊑-ascending = numerically descending,
  bounded below by the derivations' own positivity is *not* needed — the
  paper's condition is that ⊒ be well-founded, true for ``N`` with ≥ and
  for any chain with no infinite ascending sequences between the bottom
  and the values that occur).

The check is a *sufficient* classifier with three verdicts:

* ``TERMINATES`` — one of the conditions applies;
* ``UNKNOWN`` — no condition applies (the program may still terminate on
  a given extension, as most do);
* it never claims non-termination — that is undecidable in general.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.analysis.dependencies import Component, condense
from repro.datalog.program import Program
from repro.lattices.base import Lattice
from repro.lattices.boolean import BooleanAnd, BooleanOr
from repro.lattices.combinators import FiniteChain, FlatLattice, ProductLattice
from repro.lattices.sets import EdgeMultisets, PowersetIntersection, PowersetUnion


class TerminationVerdict(enum.Enum):
    TERMINATES = "terminates"
    UNKNOWN = "unknown"


def _is_finite(lattice: Lattice) -> bool:
    """Finitely many elements (hence finite ascending chains)."""
    if isinstance(lattice, (BooleanAnd, BooleanOr, FiniteChain, FlatLattice)):
        return True
    if isinstance(lattice, (PowersetUnion, PowersetIntersection)):
        return True  # fixed finite universe
    if isinstance(lattice, EdgeMultisets):
        return True  # capped multiplicity over a finite universe
    if isinstance(lattice, ProductLattice):
        return all(_is_finite(f) for f in lattice.factors)
    return False


def _ascending_chains_finite(lattice: Lattice) -> bool:
    """No infinite ⊑-ascending chains from any starting value that occurs.

    * ``(N ∪ {∞}, ≥)`` — numerically descending chains of naturals are
      finite... but our Naturals lattice is ≤-ordered (count's range):
      ascending = numerically increasing = infinite.  NOT chain-finite.
    * ``DescendingReals`` restricted to integers: ⊑-ascending means
      numerically strictly decreasing; over the *integers bounded below
      by some value reachable from the data* that is finite — but the
      reals are dense, so in general it is not.  We therefore only accept
      lattices that are outright finite, plus integer min-style chains
      when the program's arithmetic preserves integrality, which we
      cannot see statically — so the numeric case stays UNKNOWN and the
      engine's runtime budget takes over.
    """
    return _is_finite(lattice)


@dataclass
class TerminationReport:
    component: Component
    verdict: TerminationVerdict
    reason: str

    def __str__(self) -> str:
        return f"{self.component}: {self.verdict.value} ({self.reason})"


def check_component_termination(
    component: Component, program: Program
) -> TerminationReport:
    """Section 6.2's sufficient conditions for one component.

    Both conditions presuppose a *monotonic* component — only then is the
    Kleene sequence an ascending chain that a finite value space forces
    to close.  A non-monotonic component may oscillate forever over a
    finite atom space (the two-minimal-models program does), so
    non-admissible components are UNKNOWN regardless of their lattices.
    """
    from repro.analysis.admissible import check_component_admissible

    if not check_component_admissible(component, program).ok:
        return TerminationReport(
            component,
            TerminationVerdict.UNKNOWN,
            "component not certified monotonic: the iteration may "
            "oscillate rather than ascend",
        )

    lattices: List[Lattice] = []
    for predicate in component.cdb:
        decl = program.decl(predicate)
        if decl.is_cost_predicate:
            assert decl.lattice is not None
            lattices.append(decl.lattice)

    if not lattices:
        return TerminationReport(
            component,
            TerminationVerdict.TERMINATES,
            "no cost predicates: a plain Datalog component over the finite "
            "active domain (Lemma 2.2)",
        )
    if all(_ascending_chains_finite(lat) for lat in lattices):
        return TerminationReport(
            component,
            TerminationVerdict.TERMINATES,
            "all cost lattices are finite: the ascending chain over "
            "finitely many keys and values must close",
        )
    return TerminationReport(
        component,
        TerminationVerdict.UNKNOWN,
        "cost values range over an infinite domain; termination depends on "
        "the extension (cf. Example 5.1) — rely on the iteration budget",
    )


def check_program_termination(program: Program) -> List[TerminationReport]:
    return [
        check_component_termination(component, program)
        for component in condense(program)
    ]
