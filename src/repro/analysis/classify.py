"""Per-component classification: one verdict per SCC, driving evaluation.

The paper's conditions are all *per component* (Definition 2.2's program
components), but PR 1's pipeline only exposed program-wide booleans
(admissible / aggregate-stratified / ...).  This pass rolls the inferred
lattice types (:mod:`repro.analysis.typing`), the admissibility reports
(Definition 4.5) and the recursion structure of each SCC into a single
verdict:

* ``STRATIFIED`` — no recursion through aggregation or negation; the
  component is ordinary (possibly positively recursive) Datalog and any
  aggregate subgoals read lower strata only (Section 5.1's stratified
  class).
* ``MONOTONIC`` — recursion through aggregation, every recursive
  aggregate monotonic, all rules admissible: ``T_P`` is monotonic
  (Lemma 4.1) and the component has a unique minimal model.
* ``PSEUDO_MONOTONIC`` — admissible via the default-value route: some
  recursive aggregate is only pseudo-monotonic, but its CDB conjuncts are
  default-value cost predicates (Section 4.1.1, Example 4.4).
* ``NEEDS_WELL_FOUNDED`` — not certified: recursion through negation,
  a cross-rule lattice conflict on a CDB predicate, or an inadmissible
  rule.  Only the paper's Section 6 iterated-fixpoint construction (or a
  well-founded extension) gives these meaning; evaluation falls back to
  the strict naive engine.

The verdict maps to a recommended evaluation mode, consumed by
``engine.solver`` when ``method="auto"``: greedy where the extremal
invariant applies, semi-naive for certified-monotonic components, naive
otherwise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.admissible import (
    ComponentAdmissibility,
    check_program_admissible,
)
from repro.analysis.dependencies import Component
from repro.analysis.typing import TypeConflict, TypingReport, infer_types
from repro.analysis.wellformed import _is_cdb_aggregate
from repro.datalog.program import Program


class ComponentClass(enum.Enum):
    """The per-SCC verdict (module docstring)."""

    STRATIFIED = "stratified"
    MONOTONIC = "monotonic"
    PSEUDO_MONOTONIC = "pseudo-monotonic"
    NEEDS_WELL_FOUNDED = "needs-well-founded"


@dataclass
class ComponentClassification:
    """Verdict, provenance and recommended evaluation mode for one SCC."""

    component: Component
    verdict: ComponentClass
    #: Certified monotonic (admissible and free of CDB lattice conflicts).
    certified: bool
    #: Evaluation mode ``method="auto"`` picks: naive/seminaive/greedy.
    method: str
    #: Names of aggregate functions applied to CDB predicates.
    aggregate_functions: Tuple[str, ...] = ()
    reasons: Tuple[str, ...] = ()

    def __str__(self) -> str:
        parts = [f"{self.component}: {self.verdict.value}"]
        parts.append(f"[{self.method}]")
        if self.reasons:
            parts.append("— " + "; ".join(self.reasons))
        return " ".join(parts)


@dataclass
class ProgramClassification:
    """Bottom-up per-component verdicts for a whole program."""

    program: Program
    components: List[ComponentClassification]
    typing: TypingReport

    @property
    def certified(self) -> bool:
        return all(c.certified for c in self.components)

    def by_verdict(self, verdict: ComponentClass) -> List[ComponentClassification]:
        return [c for c in self.components if c.verdict is verdict]

    def __str__(self) -> str:
        return "\n".join(str(c) for c in self.components)


def _cdb_aggregate_functions(
    component: Component, program: Program
) -> Tuple[str, ...]:
    names: Set[str] = set()
    for rule in component.rules:
        for sg in rule.aggregate_subgoals():
            if _is_cdb_aggregate(sg, component.cdb):
                names.add(sg.function)
    return tuple(sorted(names))


def _conflict_predicates(
    typing: TypingReport,
) -> Dict[str, List[TypeConflict]]:
    """Map each conflict to the predicate it taints."""
    out: Dict[str, List[TypeConflict]] = {}
    for conflict in typing.conflicts:
        predicate: Optional[str] = None
        if conflict.kind == "position":
            # subject is "argument N of p".
            predicate = conflict.subject.rsplit(" ", 1)[-1]
        elif conflict.rule_index is not None:
            predicate = typing.program.rules[
                conflict.rule_index
            ].head.predicate
        if predicate is not None:
            out.setdefault(predicate, []).append(conflict)
    return out


def classify_component(
    component: Component,
    program: Program,
    admissibility: ComponentAdmissibility,
    typing: TypingReport,
) -> ComponentClassification:
    """Classify one SCC (see module docstring for the verdict order)."""
    functions = _cdb_aggregate_functions(component, program)
    reasons: List[str] = []

    tainted = _conflict_predicates(typing)
    cdb_conflicts = [
        conflict
        for predicate in sorted(component.cdb)
        for conflict in tainted.get(predicate, [])
    ]
    certified = admissibility.ok and not cdb_conflicts

    if component.recursive_through_negation:
        verdict = ComponentClass.NEEDS_WELL_FOUNDED
        reasons.append("recursion through negation")
        certified = False
    elif cdb_conflicts:
        verdict = ComponentClass.NEEDS_WELL_FOUNDED
        reasons.append(
            "lattice conflict on "
            + ", ".join(sorted({c.subject for c in cdb_conflicts}))
        )
    elif not component.recursive_through_aggregation:
        verdict = ComponentClass.STRATIFIED
        if not admissibility.ok:
            reasons.append("not admissible (evaluated stratum-at-a-time)")
    elif admissibility.ok:
        all_monotonic = all(
            program.aggregate_function(name).is_monotonic
            for name in functions
        )
        if all_monotonic:
            verdict = ComponentClass.MONOTONIC
        else:
            verdict = ComponentClass.PSEUDO_MONOTONIC
            reasons.append(
                "pseudo-monotonic aggregate over default-value predicates"
            )
    else:
        verdict = ComponentClass.NEEDS_WELL_FOUNDED
        kinds = sorted(
            {
                v.kind or "inadmissible"
                for r in admissibility.rule_reports
                for v in r.violations
            }
        )
        reasons.append("inadmissible: " + ", ".join(kinds))

    method = _recommended_method(component, program, verdict, certified)
    return ComponentClassification(
        component=component,
        verdict=verdict,
        certified=certified,
        method=method,
        aggregate_functions=functions,
        reasons=tuple(reasons),
    )


def _recommended_method(
    component: Component,
    program: Program,
    verdict: ComponentClass,
    certified: bool,
) -> str:
    if verdict is ComponentClass.NEEDS_WELL_FOUNDED or not certified:
        return "naive"
    if verdict is ComponentClass.MONOTONIC:
        # Greedy settling is only validated for extremal recursion (the
        # Dijkstra generalization of Section 7); its weight invariant is a
        # data-level promise, so auto mode reserves it for min/max.
        # Lazy import: the engine imports analysis.dependencies at module
        # load, so a top-level import here would be circular.
        from repro.aggregates.standard import Maximum, Minimum
        from repro.engine.greedy import greedy_applicable

        extremal = all(
            isinstance(
                program.aggregate_function(name), (Minimum, Maximum)
            )
            for name in _cdb_aggregate_functions(component, program)
        )
        if extremal and greedy_applicable(program, component) is not None:
            return "greedy"
    return "seminaive"


def classify_program(
    program: Program,
    *,
    admissibility: Optional[List[ComponentAdmissibility]] = None,
    typing: Optional[TypingReport] = None,
) -> ProgramClassification:
    """Classify every component, bottom-up.

    ``admissibility``/``typing`` may be passed in when the caller already
    ran those passes (the analysis report does), to avoid re-running them.
    """
    if admissibility is None:
        admissibility = check_program_admissible(program)
    if typing is None:
        typing = infer_types(program)
    components = [
        classify_component(report.component, program, report, typing)
        for report in admissibility
    ]
    return ProgramClassification(
        program=program, components=components, typing=typing
    )
