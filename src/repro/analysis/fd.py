"""Cost-respecting rules via functional-dependency inference (Definition 2.7).

A rule whose head has a cost argument is *cost-respecting* if the head's
cost argument is functionally determined by its non-cost arguments, as
derivable from:

1. the FDs in the body — every cost atom contributes
   ``{its non-cost variables} → its cost variable``;
2. the FD ``{grouping variables} → aggregate variable`` of each aggregate
   subgoal;
3. Armstrong's axioms.

We add the (sound) FDs of built-in equalities: ``V = expr`` contributes
``vars(expr) → V`` and, when both sides are single variables, the reverse
as well.  Constants are functionally determined by nothing, so they simply
never appear in FDs.  Armstrong closure over a finite attribute (variable)
set decides derivability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Set, Tuple

from repro.datalog.atoms import (
    AggregateSubgoal,
    Atom,
    AtomSubgoal,
    BuiltinSubgoal,
)
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable, expr_variable_set


@dataclass(frozen=True)
class FunctionalDependency:
    """``lhs → rhs`` over rule variables."""

    lhs: FrozenSet[Variable]
    rhs: Variable

    def __str__(self) -> str:
        left = ", ".join(sorted(v.name for v in self.lhs)) or "∅"
        return f"{{{left}}} → {self.rhs}"


def rule_functional_dependencies(
    rule: Rule, program: Program
) -> List[FunctionalDependency]:
    """The FD set of a rule body per Definition 2.7 (plus built-in FDs)."""
    fds: List[FunctionalDependency] = []

    def add_atom_fd(atom: Atom) -> None:
        decl = program.decl(atom.predicate)
        if not decl.is_cost_predicate:
            return
        cost = atom.args[-1]
        if not isinstance(cost, Variable):
            return
        lhs = frozenset(
            a for a in atom.args[: decl.key_arity] if isinstance(a, Variable)
        )
        fds.append(FunctionalDependency(lhs, cost))

    for sg in rule.body:
        if isinstance(sg, AtomSubgoal) and not sg.negated:
            add_atom_fd(sg.atom)
        elif isinstance(sg, AggregateSubgoal):
            # The aggregate value is functionally determined by the grouping
            # variables (Definition 2.7 item 2).
            if isinstance(sg.result, Variable):
                fds.append(
                    FunctionalDependency(
                        frozenset(rule.grouping_variables(sg)), sg.result
                    )
                )
        elif isinstance(sg, BuiltinSubgoal) and sg.op == "=":
            for a, b in ((sg.lhs, sg.rhs), (sg.rhs, sg.lhs)):
                if isinstance(a, Variable):
                    fds.append(
                        FunctionalDependency(expr_variable_set(b), a)
                    )
    return fds


def fd_closure(
    attributes: FrozenSet[Variable], fds: List[FunctionalDependency]
) -> FrozenSet[Variable]:
    """Armstrong closure of ``attributes`` under ``fds``."""
    closure: Set[Variable] = set(attributes)
    changed = True
    while changed:
        changed = False
        for fd in fds:
            if fd.rhs not in closure and fd.lhs <= closure:
                closure.add(fd.rhs)
                changed = True
    return frozenset(closure)


@dataclass
class CostRespectReport:
    """Outcome of the cost-respecting check for one rule."""

    rule: Rule
    applicable: bool  # False when the head has no cost argument
    ok: bool
    fds: Tuple[FunctionalDependency, ...] = ()
    detail: str = ""

    def __str__(self) -> str:
        if not self.applicable:
            return f"no cost argument (trivially cost-respecting): {self.rule}"
        status = "cost-respecting" if self.ok else "NOT cost-respecting"
        return f"{status}: {self.rule}  {self.detail}"


def check_rule_cost_respecting(rule: Rule, program: Program) -> CostRespectReport:
    """Definition 2.7 for one rule."""
    decl = program.decl(rule.head.predicate)
    if not decl.is_cost_predicate:
        return CostRespectReport(rule, applicable=False, ok=True)
    cost = rule.head.args[-1]
    if isinstance(cost, Constant):
        # A constant cost is trivially determined.
        return CostRespectReport(
            rule, applicable=True, ok=True, detail="constant cost argument"
        )
    fds = rule_functional_dependencies(rule, program)
    noncost_vars = frozenset(
        a for a in rule.head.args[: decl.key_arity] if isinstance(a, Variable)
    )
    closure = fd_closure(noncost_vars, fds)
    ok = cost in closure
    left = ", ".join(sorted(v.name for v in noncost_vars)) or "∅"
    detail = (
        f"{{{left}}}+ {'∋' if ok else '∌'} {cost} "
        f"using {len(fds)} body FDs"
    )
    return CostRespectReport(
        rule, applicable=True, ok=ok, fds=tuple(fds), detail=detail
    )


def all_rules_cost_respecting(program: Program) -> bool:
    return all(
        check_rule_cost_respecting(rule, program).ok for rule in program.rules
    )
