"""Well-typed and well-formed rules (Section 4.2, Definition 4.2).

Both checks are relative to a *component*: the CDB is the set of mutually
recursive predicates under analysis, and "CDB cost variable" means a
variable in a cost argument of a CDB atom or the aggregate variable of a
CDB aggregate subgoal.

Well-typed (Section 4.2's typing discipline):

* the multiset variable of an aggregate subgoal occurs only in cost
  arguments of the conjuncts (Definition 2.4), and each such cost column's
  lattice equals the aggregate function's declared domain;
* a body cost variable copied directly into the head cost argument must
  carry the head predicate's lattice;
* an aggregate result placed directly in the head cost argument must carry
  the aggregate function's range lattice.

Well-formed (Definition 4.2):

1. no built-ins inside aggregate subgoals — guaranteed structurally by the
   AST, nothing to check;
2. only variables in cost arguments of CDB predicates and on the left of
   ``=``/``=r`` in aggregate subgoals;
3. each CDB cost variable occurs at most once among the non-built-in body
   subgoals (ignoring the multiset variable's defining occurrence after
   the aggregate function, which the AST stores separately).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from repro.analysis.violations import Violation
from repro.datalog.atoms import (
    AggregateSubgoal,
    Atom,
    AtomSubgoal,
)
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.spans import Span
from repro.datalog.terms import Variable


def cdb_cost_variables(
    rule: Rule, program: Program, cdb: FrozenSet[str]
) -> Set[Variable]:
    """The CDB cost variables of ``rule`` (Section 4.2's definition)."""
    out: Set[Variable] = set()

    def cost_var_of(atom: Atom) -> None:
        decl = program.decl(atom.predicate)
        if decl.is_cost_predicate and atom.predicate in cdb:
            cost = atom.args[-1]
            if isinstance(cost, Variable):
                out.add(cost)

    cost_var_of(rule.head)
    for sg in rule.body:
        if isinstance(sg, AtomSubgoal):
            cost_var_of(sg.atom)
        elif isinstance(sg, AggregateSubgoal):
            for conjunct in sg.conjuncts:
                cost_var_of(conjunct)
            if _is_cdb_aggregate(sg, cdb) and isinstance(sg.result, Variable):
                out.add(sg.result)
    return out


def _is_cdb_aggregate(sg: AggregateSubgoal, cdb: FrozenSet[str]) -> bool:
    """A CDB aggregate mentions at least one CDB predicate (Section 4.2)."""
    return any(conjunct.predicate in cdb for conjunct in sg.conjuncts)


@dataclass
class FormReport:
    """Violations of well-typedness / well-formedness for one rule."""

    rule: Rule
    type_violations: List[Violation] = field(default_factory=list)
    form_violations: List[Violation] = field(default_factory=list)

    @property
    def well_typed(self) -> bool:
        return not self.type_violations

    @property
    def well_formed(self) -> bool:
        return not self.form_violations

    @property
    def ok(self) -> bool:
        return self.well_typed and self.well_formed

    @property
    def span(self) -> Optional[Span]:
        return self.rule.span


def check_well_typed(
    rule: Rule, program: Program, report: FormReport
) -> None:
    """Typing checks (see module docstring)."""
    head_decl = program.decl(rule.head.predicate)
    head_cost = (
        rule.head.args[-1]
        if head_decl.is_cost_predicate and rule.head.args
        else None
    )

    for sg in rule.aggregate_subgoals():
        function = program.aggregate_function(sg.function)
        if sg.multiset_var is not None:
            occurrences_in_cost = 0
            for conjunct in sg.conjuncts:
                decl = program.decl(conjunct.predicate)
                noncost = (
                    conjunct.args[: decl.key_arity]
                    if decl.is_cost_predicate
                    else conjunct.args
                )
                if sg.multiset_var in noncost:
                    report.type_violations.append(
                        Violation(
                            f"multiset variable {sg.multiset_var} occurs in "
                            f"a non-cost argument of {conjunct}",
                            kind="ill-typed",
                            span=conjunct.span or sg.span or rule.span,
                        )
                    )
                if (
                    decl.is_cost_predicate
                    and conjunct.args[-1] == sg.multiset_var
                ):
                    occurrences_in_cost += 1
                    assert decl.lattice is not None
                    if decl.lattice != function.domain:
                        report.type_violations.append(
                            Violation(
                                f"aggregate {sg.function} has domain "
                                f"{function.domain.name} but "
                                f"{conjunct.predicate}'s cost column is "
                                f"{decl.lattice.name}",
                                kind="ill-typed",
                                span=conjunct.span or sg.span or rule.span,
                            )
                        )
            if occurrences_in_cost == 0:
                report.type_violations.append(
                    Violation(
                        f"multiset variable {sg.multiset_var} occurs in no "
                        f"cost argument inside {sg}",
                        kind="ill-typed",
                        span=sg.span or rule.span,
                    )
                )
        # Result flowing straight into the head cost argument.
        if (
            head_cost is not None
            and isinstance(sg.result, Variable)
            and sg.result == head_cost
        ):
            assert head_decl.lattice is not None
            if function.range_ != head_decl.lattice:
                report.type_violations.append(
                    Violation(
                        f"aggregate {sg.function} has range "
                        f"{function.range_.name} but head "
                        f"{rule.head.predicate}'s cost column is "
                        f"{head_decl.lattice.name}",
                        kind="ill-typed",
                        span=sg.span or rule.span,
                    )
                )

    # Body cost variable copied straight into the head cost argument.
    if head_cost is not None and isinstance(head_cost, Variable):
        for sg in rule.atom_subgoals():
            decl = program.decl(sg.atom.predicate)
            if decl.is_cost_predicate and sg.atom.args[-1] == head_cost:
                assert decl.lattice is not None and head_decl.lattice is not None
                if decl.lattice != head_decl.lattice:
                    report.type_violations.append(
                        Violation(
                            f"cost variable {head_cost} carries "
                            f"{decl.lattice.name} (from {sg.atom.predicate}) "
                            f"but the head column is {head_decl.lattice.name}",
                            kind="ill-typed",
                            span=sg.span or rule.span,
                        )
                    )


def check_well_formed(
    rule: Rule, program: Program, cdb: FrozenSet[str], report: FormReport
) -> None:
    """Definition 4.2's three restrictions."""
    # (2) only variables in cost arguments of CDB predicates ...
    def check_cost_is_variable(atom: Atom, where: str) -> None:
        decl = program.decl(atom.predicate)
        if (
            decl.is_cost_predicate
            and atom.predicate in cdb
            and not isinstance(atom.args[-1], Variable)
        ):
            report.form_violations.append(
                Violation(
                    f"constant in the cost argument of CDB atom {atom} "
                    f"({where})",
                    kind="ill-formed",
                    span=atom.span or rule.span,
                )
            )

    # Ground fact rules are exempt: a bodiless rule contributes a constant
    # atom regardless of J, so it cannot break monotonicity (the paper's
    # restriction targets heads whose cost flows from the body; it "can
    # always be satisfied by adding built-in subgoals", which would be
    # pure ceremony for facts).
    if not (rule.is_fact and rule.head.is_ground()):
        check_cost_is_variable(rule.head, "head")
    for sg in rule.body:
        if isinstance(sg, AtomSubgoal):
            check_cost_is_variable(sg.atom, "body")
        elif isinstance(sg, AggregateSubgoal):
            for conjunct in sg.conjuncts:
                check_cost_is_variable(conjunct, "aggregate conjunct")
            # ... and to the left of the (restricted) equality sign.
            if not isinstance(sg.result, Variable):
                report.form_violations.append(
                    Violation(
                        f"constant {sg.result} on the left of "
                        f"{sg.equality_symbol} in {sg}",
                        kind="ill-formed",
                        span=sg.span or rule.span,
                    )
                )

    # (3) each CDB cost variable has at most one occurrence among the
    # non-built-in body subgoals.
    cdb_vars = cdb_cost_variables(rule, program, cdb)
    counts: Dict[Variable, int] = {v: 0 for v in cdb_vars}

    def count_in_atom(atom: Atom) -> None:
        for arg in atom.args:
            if isinstance(arg, Variable) and arg in counts:
                counts[arg] += 1

    for sg in rule.body:
        if isinstance(sg, AtomSubgoal):
            count_in_atom(sg.atom)
        elif isinstance(sg, AggregateSubgoal):
            for conjunct in sg.conjuncts:
                count_in_atom(conjunct)
            if isinstance(sg.result, Variable) and sg.result in counts:
                counts[sg.result] += 1
            # sg.multiset_var's slot is the ignored occurrence after F.

    for v, n in sorted(counts.items(), key=lambda kv: kv[0].name):
        if n > 1:
            report.form_violations.append(
                Violation(
                    f"CDB cost variable {v} occurs {n} times among the "
                    f"non-built-in subgoals (at most one allowed)",
                    kind="ill-formed",
                    span=rule.span,
                )
            )


def check_rule_form(
    rule: Rule, program: Program, cdb: FrozenSet[str]
) -> FormReport:
    """Run both the typing and the well-formedness checks for one rule."""
    report = FormReport(rule)
    check_well_typed(rule, program, report)
    check_well_formed(rule, program, cdb, report)
    return report
