"""Whole-program lattice type inference (Section 4.2, generalized).

PR 1's well-typedness check (:mod:`repro.analysis.wellformed`, Definition
4.2's typing discipline) is *rule-local*: it compares declared cost columns
against aggregate domains/ranges inside one rule.  But cost domains flow
*across* predicates: a variable bound by the cost column of one predicate
may be copied into an argument of another, and two rules may pin the same
undeclared argument position to incompatible lattices — a program-level
type error no per-rule check can see.

This module runs a fixpoint abstract interpretation over the program.  The
abstract domain is a four-level lattice of argument types::

    UNKNOWN  ⊏  ORDINARY  ⊏  LATTICE(l)  ⊏  CONFLICT

* ``UNKNOWN`` — no information yet (⊥).
* ``ORDINARY`` — an ordinary (EDB-constant) argument.
* ``LATTICE(l)`` — a cost value from lattice ``l``; carries *witnesses*
  recording where each lattice claim came from.
* ``CONFLICT`` — two incompatible lattices met (⊤); the witnesses name
  both sides.

The join is the obvious one; ``ORDINARY ⊔ LATTICE(l) = LATTICE(l)``
because constants legitimately appear in cost columns (facts).

Inference alternates two Jacobi phases until stable:

1. **Variable solve** — per rule, each variable's type is the join of the
   types of every argument position it occupies, plus seeds from aggregate
   subgoals (the multiset variable carries the function's domain, the
   result its range) — and variables connected by ``=`` built-ins are
   unified (arithmetic flows values between them).
2. **Position write-back** — inferred (undeclared) argument positions
   absorb the types of the variables and constants occurring there.

Declared positions are immutable: a cost declaration fixes the cost column
to its lattice and the key columns to ``ORDINARY``; ``@pred`` fixes every
column to ``ORDINARY``.  Conflicted cells are never propagated further, so
one genuine error does not cascade into a wall of secondary reports.

The extracted :class:`TypeConflict` records feed the ``MAD601``
(position-level, cross-rule) and ``MAD602`` (variable-level, within one
rule) diagnostics in :mod:`repro.analysis.diagnostics`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.datalog.atoms import (
    AggregateSubgoal,
    Atom,
    AtomSubgoal,
    BuiltinSubgoal,
)
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.spans import Span
from repro.datalog.terms import Constant, Variable
from repro.lattices.base import Lattice


class TypeLevel(enum.IntEnum):
    """The four levels of the argument-type lattice (module docstring)."""

    UNKNOWN = 0
    ORDINARY = 1
    LATTICE = 2
    CONFLICT = 3


@dataclass(frozen=True)
class Witness:
    """Provenance of one lattice claim: which lattice, from where."""

    lattice_name: str
    description: str
    span: Optional[Span] = field(default=None, compare=False)

    def __str__(self) -> str:
        return f"{self.description} ({self.lattice_name})"


@dataclass(frozen=True)
class ArgType:
    """One cell of the abstract domain."""

    level: TypeLevel
    lattice: Optional[Lattice] = None
    witnesses: Tuple[Witness, ...] = ()

    def __post_init__(self) -> None:
        if (self.level is TypeLevel.LATTICE) != (self.lattice is not None):
            raise ValueError("LATTICE cells carry a lattice; others do not")

    @property
    def kind(self) -> str:
        """Display category: unknown / ordinary / numeric / boolean /
        set / divisibility / lattice / conflict."""
        if self.level is TypeLevel.UNKNOWN:
            return "unknown"
        if self.level is TypeLevel.ORDINARY:
            return "ordinary"
        if self.level is TypeLevel.CONFLICT:
            return "conflict"
        assert self.lattice is not None
        return lattice_kind(self.lattice)

    def __str__(self) -> str:
        if self.level is TypeLevel.LATTICE:
            assert self.lattice is not None
            return f"{self.kind}:{self.lattice.name}"
        return self.kind


UNKNOWN = ArgType(TypeLevel.UNKNOWN)
ORDINARY = ArgType(TypeLevel.ORDINARY)
CONFLICT = ArgType(TypeLevel.CONFLICT)


def lattice_kind(lattice: Lattice) -> str:
    """Coarse display category of a cost lattice."""
    from repro.lattices.boolean import BooleanAnd, BooleanOr
    from repro.lattices.divisibility import Divisibility
    from repro.lattices.sets import PowersetIntersection, PowersetUnion

    if isinstance(lattice, (BooleanAnd, BooleanOr)):
        return "boolean"
    if isinstance(lattice, Divisibility):
        return "divisibility"
    if isinstance(lattice, (PowersetIntersection, PowersetUnion)):
        return "set"
    if lattice.numeric_direction is not None:
        return "numeric"
    return "lattice"


def _merge_witnesses(
    a: Tuple[Witness, ...], b: Tuple[Witness, ...]
) -> Tuple[Witness, ...]:
    out: List[Witness] = list(a)
    seen = {(w.lattice_name, w.description) for w in a}
    for w in b:
        key = (w.lattice_name, w.description)
        if key not in seen:
            seen.add(key)
            out.append(w)
    return tuple(out)


def join(a: ArgType, b: ArgType) -> ArgType:
    """Least upper bound in the argument-type lattice."""
    if a.level is TypeLevel.CONFLICT or b.level is TypeLevel.CONFLICT:
        return ArgType(
            TypeLevel.CONFLICT,
            witnesses=_merge_witnesses(a.witnesses, b.witnesses),
        )
    if a.level is TypeLevel.UNKNOWN:
        return b
    if b.level is TypeLevel.UNKNOWN:
        return a
    if a.level is TypeLevel.ORDINARY:
        return b
    if b.level is TypeLevel.ORDINARY:
        return a
    assert a.lattice is not None and b.lattice is not None
    if a.lattice == b.lattice:
        return ArgType(
            TypeLevel.LATTICE,
            a.lattice,
            _merge_witnesses(a.witnesses, b.witnesses),
        )
    return ArgType(
        TypeLevel.CONFLICT,
        witnesses=_merge_witnesses(a.witnesses, b.witnesses),
    )


@dataclass(frozen=True)
class TypeConflict:
    """One extracted incompatibility, with provenance on both sides.

    ``kind`` is ``"position"`` (two rules pin the same inferred argument
    position of a predicate to different lattices — MAD601) or
    ``"variable"`` (one rule flows two lattices into the same variable —
    MAD602).
    """

    kind: str
    subject: str
    witnesses: Tuple[Witness, ...]
    span: Optional[Span] = field(default=None, compare=False)
    rule_index: Optional[int] = None

    @property
    def lattice_names(self) -> FrozenSet[str]:
        return frozenset(w.lattice_name for w in self.witnesses)

    def message(self) -> str:
        sides = "; ".join(str(w) for w in self.witnesses)
        return f"{self.subject} is used at incompatible lattices: {sides}"


@dataclass
class TypingReport:
    """The result of whole-program inference."""

    program: Program
    #: predicate → one :class:`ArgType` per argument position.
    positions: Dict[str, Tuple[ArgType, ...]]
    #: rule index (into ``program.rules``) → variable → inferred type.
    variables: Dict[int, Dict[Variable, ArgType]]
    conflicts: List[TypeConflict]

    @property
    def ok(self) -> bool:
        return not self.conflicts

    def signature(self, predicate: str) -> str:
        """Render ``p(ordinary, numeric:reals_ge)`` for reports."""
        cells = self.positions.get(predicate, ())
        return f"{predicate}({', '.join(str(c) for c in cells)})"

    def __str__(self) -> str:
        lines = [
            self.signature(name)
            for name in sorted(self.positions)
        ]
        for conflict in self.conflicts:
            lines.append(f"conflict: {conflict.message()}")
        return "\n".join(lines)


_PosKey = Tuple[str, int]


def _rule_atoms(rule: Rule) -> Iterator[Atom]:
    """Every atom occurrence of a rule: head, body atoms, conjuncts."""
    yield rule.head
    for sg in rule.body:
        if isinstance(sg, AtomSubgoal):
            yield sg.atom
        elif isinstance(sg, AggregateSubgoal):
            yield from sg.conjuncts


def _equality_groups(rule: Rule) -> List[Set[Variable]]:
    """Variables connected by ``=`` built-ins (arithmetic value flow)."""
    groups: List[Set[Variable]] = []
    for sg in rule.body:
        if isinstance(sg, BuiltinSubgoal) and sg.op == "=":
            linked = set(sg.variable_set())
            if len(linked) < 2:
                continue
            merged = set(linked)
            rest: List[Set[Variable]] = []
            for group in groups:
                if group & merged:
                    merged |= group
                else:
                    rest.append(group)
            rest.append(merged)
            groups = rest
    return groups


def _solve_rule_variables(
    rule: Rule,
    program: Program,
    positions: Dict[_PosKey, ArgType],
) -> Dict[Variable, ArgType]:
    """Phase 1 for one rule: variable types from positions and seeds."""
    cells: Dict[Variable, ArgType] = {}

    def absorb(var: Variable, cell: ArgType) -> None:
        cells[var] = join(cells.get(var, UNKNOWN), cell)

    for atom in _rule_atoms(rule):
        for index, arg in enumerate(atom.args):
            if not isinstance(arg, Variable):
                continue
            cell = positions.get((atom.predicate, index), UNKNOWN)
            if cell.level is TypeLevel.CONFLICT:
                # Reported at the position itself; do not cascade.
                continue
            if cell.level is TypeLevel.LATTICE:
                assert cell.lattice is not None
                cell = ArgType(
                    TypeLevel.LATTICE,
                    cell.lattice,
                    (
                        Witness(
                            cell.lattice.name,
                            f"argument {index + 1} of {atom.predicate}",
                            atom.span,
                        ),
                    ),
                )
            absorb(arg, cell)

    for sg in rule.aggregate_subgoals():
        try:
            function = program.aggregate_function(sg.function)
        except Exception:  # unknown aggregate: MAD005's problem, not ours
            continue
        if sg.multiset_var is not None:
            absorb(
                sg.multiset_var,
                ArgType(
                    TypeLevel.LATTICE,
                    function.domain,
                    (
                        Witness(
                            function.domain.name,
                            f"multiset of {sg.function}",
                            sg.span,
                        ),
                    ),
                ),
            )
        if isinstance(sg.result, Variable):
            absorb(
                sg.result,
                ArgType(
                    TypeLevel.LATTICE,
                    function.range_,
                    (
                        Witness(
                            function.range_.name,
                            f"result of {sg.function}",
                            sg.span,
                        ),
                    ),
                ),
            )

    for group in _equality_groups(rule):
        merged = UNKNOWN
        for var in group:
            merged = join(merged, cells.get(var, UNKNOWN))
        for var in group:
            cells[var] = merged
    return cells


def infer_types(program: Program) -> TypingReport:
    """Run the two-phase fixpoint and extract conflicts."""
    positions: Dict[_PosKey, ArgType] = {}
    mutable: Set[_PosKey] = set()

    for decl in program.declarations.values():
        explicit = decl.name in program.explicit_declarations
        for index in range(decl.arity):
            key = (decl.name, index)
            if not explicit:
                positions[key] = UNKNOWN
                mutable.add(key)
            elif decl.is_cost_predicate and index == decl.arity - 1:
                assert decl.lattice is not None
                positions[key] = ArgType(
                    TypeLevel.LATTICE,
                    decl.lattice,
                    (
                        Witness(
                            decl.lattice.name,
                            f"declared cost column of {decl.name}",
                            decl.span,
                        ),
                    ),
                )
            else:
                positions[key] = ORDINARY

    variables: Dict[int, Dict[Variable, ArgType]] = {}
    # The per-position level can only climb the four-level chain, so the
    # fixpoint is reached in a handful of rounds; the bound is a backstop.
    for _ in range(4 * len(program.rules) + 8):
        variables = {
            index: _solve_rule_variables(rule, program, positions)
            for index, rule in enumerate(program.rules)
        }
        changed = False
        for index, rule in enumerate(program.rules):
            cells = variables[index]
            for atom in _rule_atoms(rule):
                for arg_index, arg in enumerate(atom.args):
                    key = (atom.predicate, arg_index)
                    if key not in mutable:
                        continue
                    if isinstance(arg, Constant):
                        contribution = ORDINARY
                    elif isinstance(arg, Variable):
                        contribution = cells.get(arg, UNKNOWN)
                        if contribution.level is TypeLevel.CONFLICT:
                            # The variable conflict is reported on its own;
                            # writing ⊤ into the position would cascade.
                            continue
                    else:  # pragma: no cover - terms are Variable|Constant
                        continue
                    merged = join(positions[key], contribution)
                    if merged != positions[key]:
                        positions[key] = merged
                        changed = True
        if not changed:
            break

    conflicts: List[TypeConflict] = []
    seen: Set[Tuple[str, str, FrozenSet[Tuple[str, str]]]] = set()

    def emit(conflict: TypeConflict) -> None:
        key = (
            conflict.kind,
            conflict.subject,
            frozenset(
                (w.lattice_name, w.description) for w in conflict.witnesses
            ),
        )
        if key not in seen:
            seen.add(key)
            conflicts.append(conflict)

    for (predicate, index) in sorted(mutable):
        cell = positions[(predicate, index)]
        if cell.level is TypeLevel.CONFLICT:
            span = next(
                (w.span for w in cell.witnesses if w.span is not None), None
            )
            emit(
                TypeConflict(
                    kind="position",
                    subject=f"argument {index + 1} of {predicate}",
                    witnesses=cell.witnesses,
                    span=span,
                )
            )

    for index, cells in sorted(variables.items()):
        rule = program.rules[index]
        for var in sorted(cells, key=lambda v: v.name):
            cell = cells[var]
            if cell.level is TypeLevel.CONFLICT:
                span = next(
                    (w.span for w in cell.witnesses if w.span is not None),
                    rule.span,
                )
                emit(
                    TypeConflict(
                        kind="variable",
                        subject=f"variable {var} in rule {rule.head}",
                        witnesses=cell.witnesses,
                        span=span,
                        rule_index=index,
                    )
                )

    by_predicate: Dict[str, Tuple[ArgType, ...]] = {}
    for name, decl in program.declarations.items():
        by_predicate[name] = tuple(
            positions.get((name, index), UNKNOWN)
            for index in range(decl.arity)
        )
    return TypingReport(
        program=program,
        positions=by_predicate,
        variables=variables,
        conflicts=conflicts,
    )
