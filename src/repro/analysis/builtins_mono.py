"""Syntactic sufficient check that a rule's built-in conjunction ``E_r`` is
monotonic (Definitions 4.3–4.4).

The paper defines monotonicity of ``E_r`` semantically and notes that "in
practice, we need some simple conditions for checking that E_r is
monotonic".  This module implements such conditions as a direction-tag
dataflow:

* every variable occurring in the non-built-in body subgoals gets an
  initial tag — ``FIXED`` (equal under both assignments of Definition 4.3)
  for ordinary variables, ``VARIES(d)`` for CDB cost variables, where
  ``d ∈ {+1, -1}`` says in which *numeric* direction a ⊑-increase moves
  the value (the lattice's ``numeric_direction``);
* *defining* equalities ``V = expr`` (where ``V`` is otherwise unbound)
  extend the tagging by a polarity analysis of ``expr``;
* *constraint* built-ins must provably stay satisfied when ``VARIES``
  variables move in their directions (e.g. ``N > 0.5`` with ``N`` varying
  upward);
* finally the head cost variable's tag must move in the head lattice's
  direction (or be fixed), giving ``σ1(v_h) ⊑ σ'2(v_h)``.

Anything the analysis cannot certify is reported as a violation — the
check is *sufficient*, never necessary, exactly like the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.analysis.violations import Violation
from repro.analysis.wellformed import _is_cdb_aggregate
from repro.datalog.atoms import (
    AggregateSubgoal,
    Atom,
    AtomSubgoal,
    BuiltinSubgoal,
)
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.spans import Span
from repro.datalog.terms import Constant, Expr, Variable, expr_variable_set


@dataclass(frozen=True)
class Tag:
    """Direction tag of a variable or expression.

    ``kind`` is one of ``"fixed"``, ``"varies"``, ``"unknown"``;
    ``direction`` is ±1 for numeric ``varies`` tags and None for
    non-numeric lattices (set-valued, chains, ...), where the variable may
    ⊑-increase but supports no arithmetic reasoning; ``lattice`` records
    which lattice the variation lives in, so an identity flow into a head
    of the *same* lattice is recognised as monotone even without a
    numeric direction.
    """

    kind: str
    direction: Optional[int] = None
    lattice: Optional[object] = None

    def __str__(self) -> str:
        if self.kind == "varies":
            if self.direction is None:
                return "varies(⊑)"
            arrow = "↑" if self.direction == 1 else "↓"
            return f"varies{arrow}"
        return self.kind


FIXED = Tag("fixed")
UNKNOWN = Tag("unknown")


def varies(direction: Optional[int], lattice: Optional[object] = None) -> Tag:
    return Tag("varies", direction, lattice)


def _negate(tag: Tag) -> Tag:
    if tag.kind == "varies":
        if tag.direction is None:
            return UNKNOWN  # non-numeric variation cannot enter arithmetic
        return varies(-tag.direction)
    return tag


def _combine_additive(a: Tag, b: Tag) -> Tag:
    if a.kind == "unknown" or b.kind == "unknown":
        return UNKNOWN
    for tag in (a, b):
        if tag.kind == "varies" and tag.direction is None:
            return UNKNOWN  # non-numeric variation cannot enter arithmetic
    if a.kind == "fixed":
        return b
    if b.kind == "fixed":
        return a
    return (
        varies(a.direction) if a.direction == b.direction else UNKNOWN
    )


def _const_sign(expr: Expr) -> Optional[int]:
    """+1 / -1 / 0 for numeric constant leaves; None otherwise."""
    if isinstance(expr, Constant) and isinstance(expr.value, (int, float)):
        if expr.value > 0:
            return 1
        if expr.value < 0:
            return -1
        return 0
    return None


def expr_tag(expr: Expr, tags: Dict[Variable, Tag]) -> Tag:
    """Polarity analysis of an arithmetic expression under ``tags``.

    Unbound variables yield ``UNKNOWN`` (the caller decides whether the
    expression was allowed to contain them).
    """
    if isinstance(expr, Constant):
        return FIXED
    if isinstance(expr, Variable):
        return tags.get(expr, UNKNOWN)
    left = expr_tag(expr.left, tags)
    right = expr_tag(expr.right, tags)
    if expr.op == "+":
        return _combine_additive(left, right)
    if expr.op == "-":
        return _combine_additive(left, _negate(right))
    if expr.op == "*":
        if left.kind == "fixed" and right.kind == "fixed":
            return FIXED
        for moving, other_expr, other_tag in (
            (left, expr.right, right),
            (right, expr.left, left),
        ):
            if moving.kind == "varies" and other_tag.kind == "fixed":
                sign = _const_sign(other_expr)
                if sign is None:
                    return UNKNOWN
                if sign == 0:
                    return FIXED
                assert moving.direction is not None
                return varies(moving.direction * sign)
        return UNKNOWN
    # division
    denominator_sign = _const_sign(expr.right)
    if right.kind == "fixed" and denominator_sign in (1, -1):
        if left.kind == "fixed":
            return FIXED
        if left.kind == "varies":
            assert left.direction is not None
            return varies(left.direction * denominator_sign)
    if left.kind == "fixed" and right.kind == "fixed":
        return FIXED
    return UNKNOWN


def _initial_tags(
    rule: Rule, program: Program, cdb: FrozenSet[str]
) -> tuple[Dict[Variable, Tag], List[str]]:
    """Tags for every variable bound by the non-built-in body subgoals."""
    tags: Dict[Variable, Tag] = {}
    problems: List[str] = []

    def tag_cost_var(atom: Atom, predicate_in_cdb: bool) -> None:
        decl = program.decl(atom.predicate)
        if not decl.is_cost_predicate:
            return
        cost = atom.args[-1]
        if not isinstance(cost, Variable):
            return
        assert decl.lattice is not None
        if predicate_in_cdb:
            tags[cost] = varies(decl.lattice.numeric_direction, decl.lattice)
        else:
            tags.setdefault(cost, FIXED)

    for sg in rule.body:
        if isinstance(sg, AtomSubgoal):
            for v in sg.atom.variables():
                tags.setdefault(v, FIXED)
            tag_cost_var(sg.atom, sg.atom.predicate in cdb)
        elif isinstance(sg, AggregateSubgoal):
            for conjunct in sg.conjuncts:
                for v in conjunct.variables():
                    tags.setdefault(v, FIXED)
            if isinstance(sg.result, Variable):
                function = program.aggregate_function(sg.function)
                if _is_cdb_aggregate(sg, cdb):
                    tags[sg.result] = varies(
                        function.range_.numeric_direction, function.range_
                    )
                else:
                    tags[sg.result] = FIXED
    return tags, problems


@dataclass
class BuiltinMonotonicityReport:
    """Outcome of the Definition 4.4 sufficient check for one rule."""

    rule: Rule
    violations: List[Violation] = field(default_factory=list)
    tags: Dict[Variable, Tag] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def span(self) -> Optional[Span]:
        """Source location of the offending rule (None if built in code)."""
        return self.rule.span


def check_builtin_monotonicity(
    rule: Rule, program: Program, cdb: FrozenSet[str]
) -> BuiltinMonotonicityReport:
    """Certify (or refuse to certify) that ``E_r`` is monotonic."""
    report = BuiltinMonotonicityReport(rule)
    tags, problems = _initial_tags(rule, program, cdb)
    report.violations += problems

    builtins = list(rule.builtin_subgoals())
    constraints: List[BuiltinSubgoal] = []

    # Pass 1 — defining equalities, processed to a fixpoint so chains such
    # as "A = B + 1, C = A + D" resolve in any order.
    pending = list(builtins)
    progress = True
    while progress:
        progress = False
        still_pending: List[BuiltinSubgoal] = []
        for sg in pending:
            defined = None
            if sg.op == "=":
                if isinstance(sg.lhs, Variable) and sg.lhs not in tags:
                    defined = (sg.lhs, sg.rhs)
                elif isinstance(sg.rhs, Variable) and sg.rhs not in tags:
                    defined = (sg.rhs, sg.lhs)
            if defined is None:
                still_pending.append(sg)
                continue
            var, expr = defined
            if any(v not in tags for v in expr_variable_set(expr)):
                # The defining expression itself awaits definitions; retry
                # next round (chains such as "A = B + 1, C = A + D").
                still_pending.append(sg)
                continue
            tags[var] = expr_tag(expr, tags)
            progress = True
        pending = still_pending
    # Whatever could not act as a definition is a constraint; a pending
    # equality over genuinely unbound variables yields UNKNOWN tags and
    # fails the constraint check below, which is the right outcome.
    constraints = pending

    # Pass 2 — constraint built-ins must stay satisfied under variation.
    for sg in constraints:
        left = expr_tag(sg.lhs, tags)
        right = expr_tag(sg.rhs, tags)
        ok = _constraint_preserved(sg.op, left, right)
        if not ok:
            report.violations.append(
                Violation(
                    f"built-in {sg} not certifiably monotone "
                    f"(lhs {left}, rhs {right})",
                    kind="nonmonotone-builtin",
                    span=sg.span or rule.span,
                )
            )

    # Pass 3 — the head cost variable must move in the head's direction.
    head_decl = program.decl(rule.head.predicate)
    if head_decl.is_cost_predicate:
        head_cost = rule.head.args[-1]
        if isinstance(head_cost, Variable):
            assert head_decl.lattice is not None
            head_direction = head_decl.lattice.numeric_direction
            tag = tags.get(head_cost)
            if tag is None:
                report.violations.append(
                    Violation(
                        f"head cost variable {head_cost} is never bound",
                        kind="nonmonotone-builtin",
                        span=rule.head.span or rule.span,
                    )
                )
            elif tag.kind == "unknown":
                report.violations.append(
                    Violation(
                        f"head cost variable {head_cost} has unknown "
                        f"direction",
                        kind="nonmonotone-builtin",
                        span=rule.head.span or rule.span,
                    )
                )
            elif tag.kind == "varies":
                if tag.lattice is not None and tag.lattice == head_decl.lattice:
                    pass  # identity flow within one lattice: monotone
                elif head_direction is None or tag.direction is None:
                    report.violations.append(
                        Violation(
                            f"head cost variable {head_cost} varies in a "
                            f"lattice that cannot be aligned with the "
                            f"head's ({head_decl.lattice.name})",
                            kind="nonmonotone-builtin",
                            span=rule.head.span or rule.span,
                        )
                    )
                elif tag.direction != head_direction:
                    report.violations.append(
                        Violation(
                            f"head cost variable {head_cost} varies against "
                            f"the head lattice's order",
                            kind="nonmonotone-builtin",
                            span=rule.head.span or rule.span,
                        )
                    )
    report.tags = tags
    return report


def _constraint_preserved(op: str, left: Tag, right: Tag) -> bool:
    """Can ``left op right`` be invalidated by the allowed variations?"""
    if left.kind == "fixed" and right.kind == "fixed":
        return True
    if left.kind == "unknown" or right.kind == "unknown":
        return False
    for tag in (left, right):
        if tag.kind == "varies" and tag.direction is None:
            return False  # non-numeric variation in a numeric comparison
    if op in ("=", "!="):
        return False  # a varying side can break (or create) equality
    if op in ("<", "<="):
        left_ok = left.kind == "fixed" or left.direction == -1
        right_ok = right.kind == "fixed" or right.direction == 1
        return left_ok and right_ok
    # op in (">", ">=")
    left_ok = left.kind == "fixed" or left.direction == 1
    right_ok = right.kind == "fixed" or right.direction == -1
    return left_ok and right_ok
