"""Range-restriction (Definition 2.5) and the finiteness guarantee.

A rule is *range-restricted* when the limited/quasi-limited variable
closure covers the positions Definition 2.5 enumerates; Lemma 2.2 then
guarantees a finite set of satisfiable ground rule instances, finite
aggregate multisets, and active-domain head constants — everything the
bottom-up engine relies on.

The limited/quasi-limited sets are computed as least fixpoints of the
closure conditions, exactly mirroring the paper's "minimal set containing
all variables V that satisfy one of the following" phrasing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Set

from repro.analysis.violations import Violation
from repro.datalog.atoms import (
    AggregateSubgoal,
    Atom,
    AtomSubgoal,
    BuiltinSubgoal,
)
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.spans import Span
from repro.datalog.terms import (
    Constant,
    Variable,
    expr_variable_set,
)


def _atom_limited_vars(atom: Atom, program: Program) -> Set[Variable]:
    """Variables in *limited arguments* of ``atom``: non-cost arguments of a
    predicate with no default declaration."""
    decl = program.decl(atom.predicate)
    if decl.has_default:
        return set()
    args = atom.args[: decl.key_arity] if decl.is_cost_predicate else atom.args
    return {a for a in args if isinstance(a, Variable)}


def _atom_noncost_vars(atom: Atom, program: Program) -> Set[Variable]:
    decl = program.decl(atom.predicate)
    args = atom.args[: decl.key_arity] if decl.is_cost_predicate else atom.args
    return {a for a in args if isinstance(a, Variable)}


def _atom_cost_var(atom: Atom, program: Program) -> Variable | None:
    decl = program.decl(atom.predicate)
    if not decl.is_cost_predicate:
        return None
    cost = atom.args[-1]
    return cost if isinstance(cost, Variable) else None


def limited_variables(rule: Rule, program: Program) -> FrozenSet[Variable]:
    """The minimal set of *limited* variables of ``rule`` (Definition 2.5)."""
    limited: Set[Variable] = set()

    def step() -> bool:
        before = len(limited)
        for sg in rule.body:
            if isinstance(sg, AtomSubgoal) and not sg.negated:
                limited.update(_atom_limited_vars(sg.atom, program))
            elif isinstance(sg, AggregateSubgoal):
                inner_limited: Set[Variable] = set()
                for conjunct in sg.conjuncts:
                    inner_limited.update(_atom_limited_vars(conjunct, program))
                local = rule.local_variables(sg)
                limited.update(local & inner_limited)
                if sg.restricted:
                    grouping = rule.grouping_variables(sg)
                    limited.update(grouping & inner_limited)
            elif isinstance(sg, BuiltinSubgoal) and sg.op == "=":
                for a, b in ((sg.lhs, sg.rhs), (sg.rhs, sg.lhs)):
                    if isinstance(a, Variable):
                        if isinstance(b, Variable) and b in limited:
                            limited.add(a)
                        elif isinstance(b, Constant):
                            limited.add(a)
        return len(limited) != before

    while step():
        pass
    return frozenset(limited)


def quasi_limited_variables(
    rule: Rule, program: Program, limited: FrozenSet[Variable]
) -> FrozenSet[Variable]:
    """The minimal set of *quasi-limited* variables (Definition 2.5)."""
    quasi: Set[Variable] = set()

    for sg in rule.body:
        if isinstance(sg, AtomSubgoal) and not sg.negated:
            cost = _atom_cost_var(sg.atom, program)
            if cost is not None:
                quasi.add(cost)
        elif isinstance(sg, AggregateSubgoal):
            for conjunct in sg.conjuncts:
                cost = _atom_cost_var(conjunct, program)
                if cost is not None:
                    quasi.add(cost)
            if isinstance(sg.result, Variable):
                quasi.add(sg.result)

    def step() -> bool:
        before = len(quasi)
        for sg in rule.body:
            if isinstance(sg, BuiltinSubgoal) and sg.op == "=":
                for a, b in ((sg.lhs, sg.rhs), (sg.rhs, sg.lhs)):
                    if isinstance(a, Variable):
                        vars_b = expr_variable_set(b)
                        if all(v in quasi or v in limited for v in vars_b):
                            quasi.add(a)
        return len(quasi) != before

    while step():
        pass
    return frozenset(quasi)


@dataclass
class SafetyReport:
    """Violations of Definition 2.5 for one rule (empty ⇒ range-restricted)."""

    rule: Rule
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def span(self) -> Optional[Span]:
        """Source location of the offending rule (None if built in code)."""
        return self.rule.span

    def __str__(self) -> str:
        if self.ok:
            return f"range-restricted: {self.rule}"
        problems = "; ".join(self.violations)
        return f"NOT range-restricted: {self.rule}  [{problems}]"


def check_rule_safety(rule: Rule, program: Program) -> SafetyReport:
    """Check every bullet of Definition 2.5 for ``rule``."""
    report = SafetyReport(rule)
    limited = limited_variables(rule, program)
    quasi = quasi_limited_variables(rule, program, limited)

    def require_limited(
        variables: Iterable[Variable], where: str, span: Optional[Span] = None
    ) -> None:
        for v in sorted(variables, key=lambda v: v.name):
            if v not in limited:
                report.violations.append(
                    Violation(
                        f"{v} not limited ({where})",
                        kind="unsafe-variable",
                        span=span or rule.span,
                    )
                )

    def require_quasi(
        variables: Iterable[Variable], where: str, span: Optional[Span] = None
    ) -> None:
        for v in sorted(variables, key=lambda v: v.name):
            if v not in quasi and v not in limited:
                report.violations.append(
                    Violation(
                        f"{v} not quasi-limited ({where})",
                        kind="unsafe-variable",
                        span=span or rule.span,
                    )
                )

    for sg in rule.body:
        if isinstance(sg, AtomSubgoal):
            decl = program.decl(sg.atom.predicate)
            if sg.negated:
                require_limited(
                    _atom_noncost_vars(sg.atom, program),
                    f"negated {sg.atom}",
                    span=sg.span,
                )
                cost = _atom_cost_var(sg.atom, program)
                if cost is not None:
                    require_quasi([cost], f"negated {sg.atom}", span=sg.span)
            if decl.has_default:
                require_limited(
                    _atom_noncost_vars(sg.atom, program),
                    f"default-value subgoal {sg.atom}",
                    span=sg.span,
                )
        elif isinstance(sg, AggregateSubgoal):
            require_limited(
                rule.grouping_variables(sg), f"grouping of {sg}", span=sg.span
            )
            for conjunct in sg.conjuncts:
                decl = program.decl(conjunct.predicate)
                if decl.has_default:
                    require_limited(
                        _atom_noncost_vars(conjunct, program),
                        f"default-value conjunct {conjunct}",
                        span=conjunct.span or sg.span,
                    )
                noncost_locals = _atom_noncost_vars(
                    conjunct, program
                ) & rule.local_variables(sg)
                require_limited(
                    noncost_locals,
                    f"local variables of {sg}",
                    span=conjunct.span or sg.span,
                )
        elif isinstance(sg, BuiltinSubgoal):
            require_quasi(sg.variable_set(), f"built-in {sg}", span=sg.span)

    head_decl = program.decl(rule.head.predicate)
    require_limited(
        _atom_noncost_vars(rule.head, program),
        f"head {rule.head}",
        span=rule.head.span,
    )
    if head_decl.is_cost_predicate:
        cost = _atom_cost_var(rule.head, program)
        if cost is not None:
            require_quasi(
                [cost], f"head cost argument of {rule.head}", span=rule.head.span
            )
    return report


def check_program_safety(program: Program) -> List[SafetyReport]:
    """Per-rule safety reports for the whole program."""
    return [check_rule_safety(rule, program) for rule in program.rules]


def is_range_restricted(program: Program) -> bool:
    return all(report.ok for report in check_program_safety(program))
