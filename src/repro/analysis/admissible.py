"""Admissible rules and monotonic programs (Definition 4.5, Lemma 4.1).

A rule is *admissible* (relative to its component's CDB) when it is
well-typed and well-formed, every CDB aggregate subgoal uses a monotonic
aggregate function — or a pseudo-monotonic one whose CDB conjuncts are all
default-value cost predicates — and the conjunction of its built-ins is
monotonic.  If every rule of a component is admissible, ``T_P`` is
monotonic in its first argument (Lemma 4.1) and the component has a unique
minimal model.

One extra check rides along: negation applied to a CDB predicate of the
same component breaks monotonicity whenever the rule can fire (the remark
after Proposition 6.1), so it is reported as an admissibility violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional

from repro.analysis.builtins_mono import check_builtin_monotonicity
from repro.analysis.violations import Violation
from repro.analysis.dependencies import Component, condense
from repro.analysis.wellformed import _is_cdb_aggregate, check_rule_form
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.spans import Span


@dataclass
class RuleAdmissibility:
    """Admissibility verdict for one rule within one component."""

    rule: Rule
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def span(self) -> Optional[Span]:
        """Source location of the offending rule (None if built in code)."""
        return self.rule.span

    def __str__(self) -> str:
        if self.ok:
            return f"admissible: {self.rule}"
        return f"NOT admissible: {self.rule}\n    " + "\n    ".join(self.violations)


def check_rule_admissible(
    rule: Rule, program: Program, cdb: FrozenSet[str]
) -> RuleAdmissibility:
    """Definition 4.5 for one rule."""
    out = RuleAdmissibility(rule)

    form = check_rule_form(rule, program, cdb)
    out.violations += [
        Violation(f"typing: {v}", kind=v.kind or "ill-typed", span=v.span)
        for v in form.type_violations
    ]
    out.violations += [
        Violation(f"form: {v}", kind=v.kind or "ill-formed", span=v.span)
        for v in form.form_violations
    ]

    for sg in rule.aggregate_subgoals():
        if not _is_cdb_aggregate(sg, cdb):
            continue
        function = program.aggregate_function(sg.function)
        if function.is_monotonic:
            continue
        if function.is_pseudo_monotonic:
            bad = [
                c.predicate
                for c in sg.conjuncts
                if c.predicate in cdb
                and not program.decl(c.predicate).has_default
            ]
            if bad:
                out.violations.append(
                    Violation(
                        f"aggregate {sg.function} is only pseudo-monotonic "
                        f"but CDB conjunct(s) "
                        f"{', '.join(sorted(set(bad)))} are not "
                        f"default-value cost predicates",
                        kind="inadmissible-aggregate",
                        span=sg.span or rule.span,
                    )
                )
        else:
            out.violations.append(
                Violation(
                    f"aggregate {sg.function} is neither monotonic nor "
                    f"pseudo-monotonic",
                    kind="inadmissible-aggregate",
                    span=sg.span or rule.span,
                )
            )

    builtin_report = check_builtin_monotonicity(rule, program, cdb)
    out.violations += [
        Violation(
            f"built-ins: {v}",
            kind=v.kind or "nonmonotone-builtin",
            span=v.span,
        )
        for v in builtin_report.violations
    ]

    for sg in rule.negative_atom_subgoals():
        if sg.atom.predicate in cdb:
            out.violations.append(
                Violation(
                    f"negation on CDB predicate {sg.atom.predicate} breaks "
                    f"monotonicity (remark after Proposition 6.1)",
                    kind="negation-in-recursion",
                    span=sg.span or rule.span,
                )
            )
    return out


@dataclass
class ComponentAdmissibility:
    """Admissibility of one component (whose rules share a CDB)."""

    component: Component
    rule_reports: List[RuleAdmissibility] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.rule_reports)

    @property
    def monotonic(self) -> bool:
        """Admissible components are monotonic (Lemma 4.1)."""
        return self.ok

    def __str__(self) -> str:
        status = "monotonic (all rules admissible)" if self.ok else "NOT certified"
        lines = [f"{self.component}: {status}"]
        for r in self.rule_reports:
            if not r.ok:
                lines.append("  " + str(r).replace("\n", "\n  "))
        return "\n".join(lines)


def check_component_admissible(
    component: Component, program: Program
) -> ComponentAdmissibility:
    report = ComponentAdmissibility(component)
    for rule in component.rules:
        report.rule_reports.append(
            check_rule_admissible(rule, program, component.cdb)
        )
    return report


def check_program_admissible(program: Program) -> List[ComponentAdmissibility]:
    """Per-component admissibility for the whole program, bottom-up."""
    return [
        check_component_admissible(component, program)
        for component in condense(program)
    ]


def is_program_admissible(program: Program) -> bool:
    """True iff every component is certified monotonic via Definition 4.5."""
    return all(r.ok for r in check_program_admissible(program))
