"""r-monotonic classification (Section 5.2, after Mumick et al.).

A rule is *r-monotonic* when adding tuples to the relations of its
subgoals can only add head tuples — earlier deductions are never
invalidated.  Mumick et al. do not treat aggregated values specially, so a
rule whose aggregate value reaches the head is *not* r-monotonic (the
paper's discussion of the company-control rule ``m(X,Y,N) ← N =r sum ...``).

The classifier here is syntactic and sufficient, mirroring the paper's
discussion:

* no negated subgoals;
* no aggregate variable may occur in the head (its value changes as the
  aggregated relation grows, invalidating the old tuple);
* an aggregate variable may occur in comparison built-ins only where
  growth of the aggregate preserves satisfaction (e.g. ``N > 0.5`` for a
  ``sum``) — determined from the aggregate range's numeric direction;
* an aggregate variable may not feed arithmetic that reaches the head.

The paper's examples are reproduced by the tests: the combined
company-control rule *is* r-monotonic, the shortest-path program and the
party-invitation program are *not* (the latter because the comparison
``N >= K`` has the count on the growing side but the paper's point is the
dependence on ``K`` — see Example 4.3 — our classifier accepts
``N >= K`` and rejects the program for its head aggregate instead; both
classifications agree with Section 5.2's verdicts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.violations import Violation
from repro.datalog.atoms import AggregateSubgoal, BuiltinSubgoal
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.spans import Span
from repro.datalog.terms import Expr, Variable, expr_variable_set


@dataclass
class RMonotonicReport:
    """Why a rule is (not) r-monotonic."""

    rule: Rule
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def span(self) -> Optional[Span]:
        """Source location of the offending rule (None if built in code)."""
        return self.rule.span


def _aggregate_growth_direction(
    sg: AggregateSubgoal, program: Program
) -> Optional[int]:
    """Numeric direction the aggregate's value moves as tuples are added.

    For a monotonic aggregate the value ⊑-increases with more tuples, so
    the numeric movement is the range lattice's direction.  For anything
    else we return None (unknown movement).
    """
    function = program.aggregate_function(sg.function)
    if not function.is_monotonic:
        return None
    return function.range_.numeric_direction


def check_rule_r_monotonic(rule: Rule, program: Program) -> RMonotonicReport:
    report = RMonotonicReport(rule)

    for sg in rule.negative_atom_subgoals():
        report.violations.append(
            Violation(
                f"negated subgoal {sg}",
                kind="not-r-monotonic",
                span=sg.span or rule.span,
            )
        )

    head_vars = rule.head.variable_set()
    growth: Dict[Variable, Optional[int]] = {}
    for sg in rule.aggregate_subgoals():
        if not isinstance(sg.result, Variable):
            continue
        if sg.result in head_vars:
            report.violations.append(
                Violation(
                    f"aggregate value {sg.result} of {sg.function} appears "
                    f"in the head (grows as tuples are added, invalidating "
                    f"earlier deductions)",
                    kind="not-r-monotonic",
                    span=sg.span or rule.span,
                )
            )
        growth[sg.result] = _aggregate_growth_direction(sg, program)

    for sg in rule.builtin_subgoals():
        involved = {
            v for v in sg.variable_set() if v in growth
        }
        if not involved:
            continue
        if sg.op in ("=", "!="):
            # Comparing the aggregate with anything by (in)equality: any
            # growth breaks the old relationship.
            report.violations.append(
                Violation(
                    f"aggregate value constrained by (in)equality {sg}",
                    kind="not-r-monotonic",
                    span=sg.span or rule.span,
                )
            )
            continue
        ok = _comparison_growth_safe(sg, growth)
        if not ok:
            report.violations.append(
                Violation(
                    f"comparison {sg} can be invalidated as the aggregate "
                    f"grows",
                    kind="not-r-monotonic",
                    span=sg.span or rule.span,
                )
            )
    return report


def _comparison_growth_safe(
    sg: BuiltinSubgoal, growth: Dict[Variable, Optional[int]]
) -> bool:
    """Does ``sg`` stay satisfied when aggregate values grow?

    Aggregates on the large side of ``>``/``>=`` must grow numerically
    upward; on the small side of ``<``/``<=`` downward.  A side mixing an
    aggregate into arithmetic is accepted only when it is the bare variable
    (conservative).
    """

    def side_ok(expr: Expr, must_move: int) -> bool:
        vars_here = expr_variable_set(expr)
        moving = [v for v in vars_here if v in growth]
        if not moving:
            return True
        if len(moving) == 1 and isinstance(expr, Variable):
            return growth[moving[0]] == must_move
        return False

    if sg.op in (">", ">="):
        return side_ok(sg.lhs, 1) and side_ok(sg.rhs, -1)
    if sg.op in ("<", "<="):
        return side_ok(sg.lhs, -1) and side_ok(sg.rhs, 1)
    return False


def check_program_r_monotonic(program: Program) -> List[RMonotonicReport]:
    return [check_rule_r_monotonic(rule, program) for rule in program.rules]


def is_r_monotonic(program: Program) -> bool:
    """Section 5.2: a program is r-monotonic iff every rule is."""
    return all(r.ok for r in check_program_r_monotonic(program))
