"""Conflict-freedom (Definition 2.10) — the syntactic sufficient condition
for cost consistency (Lemma 2.3).

A program is conflict-free when every rule is cost-respecting and, for
every pair of rules whose heads (restricted to the non-cost arguments)
unify with mgu θ, either

1. a containment mapping exists between the unified rules (in either
   direction), or
2. the conjunction of the two unified bodies contains an instance of an
   integrity constraint (so the bodies can never both be satisfied).

Rules are renamed apart before unification.  Pairs are checked for every
ordered combination including a rule with itself (self-pairs are trivially
discharged by the identity containment mapping; genuine single-rule FD
violations are caught by the cost-respecting check).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.fd import check_rule_cost_respecting
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Variable
from repro.datalog.unify import (
    Substitution,
    apply_to_rule,
    containment_mapping,
    find_constraint_instance,
    flatten,
    unify_terms,
)


def rename_apart(rule: Rule, suffix: str) -> Rule:
    """Rename every variable of ``rule`` by appending ``suffix``."""
    subst: Substitution = {
        v: Variable(v.name + suffix) for v in rule.variable_set()
    }
    return apply_to_rule(rule, subst)


def _unify_noncost_heads(
    r1: Rule, r2: Rule, program: Program
) -> Optional[Substitution]:
    """MGU of the two heads restricted to the non-cost arguments, or None."""
    if r1.head.predicate != r2.head.predicate:
        return None
    decl = program.decl(r1.head.predicate)
    k = decl.key_arity if decl.is_cost_predicate else decl.arity
    theta = unify_terms(zip(r1.head.args[:k], r2.head.args[:k]))
    return None if theta is None else flatten(theta)


@dataclass
class PairVerdict:
    """How one rule pair was discharged (or not)."""

    rule1: Rule
    rule2: Rule
    heads_unify: bool
    via: str = ""  # "containment", "constraint", "" (undischarged)

    @property
    def ok(self) -> bool:
        return not self.heads_unify or bool(self.via)


@dataclass
class ConflictReport:
    """Whole-program conflict-freedom outcome (Definition 2.10)."""

    cost_respecting_failures: List[Rule] = field(default_factory=list)
    undischarged_pairs: List[PairVerdict] = field(default_factory=list)
    pair_verdicts: List[PairVerdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.cost_respecting_failures and not self.undischarged_pairs

    def __str__(self) -> str:
        if self.ok:
            return "conflict-free"
        lines = ["NOT conflict-free:"]
        for rule in self.cost_respecting_failures:
            lines.append(f"  not cost-respecting: {rule}")
        for verdict in self.undischarged_pairs:
            lines.append(
                f"  possibly conflicting pair:\n    {verdict.rule1}\n    {verdict.rule2}"
            )
        return "\n".join(lines)


def check_pair(r1: Rule, r2: Rule, program: Program) -> PairVerdict:
    """Definition 2.10 for one (renamed-apart) rule pair."""
    a = rename_apart(r1, "_1")
    b = rename_apart(r2, "_2")
    theta = _unify_noncost_heads(a, b, program)
    if theta is None:
        return PairVerdict(r1, r2, heads_unify=False)
    a_theta = apply_to_rule(a, theta)
    b_theta = apply_to_rule(b, theta)
    if (
        containment_mapping(a_theta, b_theta) is not None
        or containment_mapping(b_theta, a_theta) is not None
    ):
        return PairVerdict(r1, r2, heads_unify=True, via="containment")
    conjunction = list(a_theta.body) + list(b_theta.body)
    for constraint in program.constraints:
        if find_constraint_instance(constraint.body, conjunction) is not None:
            return PairVerdict(r1, r2, heads_unify=True, via="constraint")
    return PairVerdict(r1, r2, heads_unify=True)


def check_conflict_freedom(program: Program) -> ConflictReport:
    """Definition 2.10 for the whole program."""
    report = ConflictReport()
    for rule in program.rules:
        if not check_rule_cost_respecting(rule, program).ok:
            report.cost_respecting_failures.append(rule)

    # Only pairs of rules defining the *same cost predicate* can produce
    # conflicting cost atoms.
    by_predicate: Dict[str, List[Rule]] = {}
    for rule in program.rules:
        if program.is_cost_predicate(rule.head.predicate):
            by_predicate.setdefault(rule.head.predicate, []).append(rule)

    for rules in by_predicate.values():
        for r1, r2 in itertools.combinations_with_replacement(rules, 2):
            verdict = check_pair(r1, r2, program)
            report.pair_verdicts.append(verdict)
            if not verdict.ok:
                report.undischarged_pairs.append(verdict)
    return report


def is_conflict_free(program: Program) -> bool:
    return check_conflict_freedom(program).ok
