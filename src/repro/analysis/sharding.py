"""Shard-safety analysis: when is partitioned evaluation sound?

The paper's central result — an admissible component has a *unique*
minimal model reached order-insensitively (Lemma 4.1, §6.3) — is exactly
the property that makes evaluation partitionable.  If every atom an SCC
derives can be assigned to a shard by hashing one **key column**, and no
rule ever joins or aggregates across two different key values, then each
shard can run the component's fixpoint on its partition alone and the
union of the shard models is the component's model:

* derivations are key-local, so no shard ever *misses* a body row it
  needs (completeness);
* the component's ``T_P`` is monotone, so no shard ever derives an atom
  the monolithic fixpoint would not (soundness — junk cannot appear just
  because the shard sees a subset of other keys);
* per-group aggregate multisets are entirely within one shard, so the
  two-phase merge algebra (:mod:`repro.aggregates.algebra`) is not even
  needed *across* shards for the group value — but it is what licenses
  the barrier merge of shard interpretations into one
  (:meth:`Relation` cost joins are exactly ``merge`` on lattice states).

``analyze_sharding`` proves this per SCC, composing the PR-2 classifier
verdict (certified MONOTONIC/STRATIFIED), the PR-2 lattice typing (via
the classifier), the PR-6 functional-dependency discipline (cost columns
are excluded from key candidacy because their values *move* during the
fixpoint), and a per-aggregate empirical merge-algebra proof.  The
verdict is one of:

* ``SHARDABLE(key)`` — a key assignment ``predicate → column`` was found
  such that every recursive rule is key-local; carries the executable
  :class:`ShardKey` plan (key columns + seed-rule split) that
  ``plan="sharded"`` consumes.
* ``SHARDABLE_AFTER_REWRITE`` — key-local and merge-safe, except some
  CDB aggregate uses the ``=`` form.  Under sharding the ``=`` form is
  unsound: grouping variables bound by replicated (unpartitioned) LDB
  atoms would make *every* shard derive ``F(∅)`` rows for groups whose
  interior lives in other shards — the cost values join away at the
  barrier, but the junk atoms' existence can inflate anything downstream
  that counts them.  Rewriting ``=`` to ``=r`` (MAD902 suggests it)
  makes the component plain SHARDABLE; the executor never applies the
  rewrite itself, it falls back.
* ``BLOCKED(witness chain)`` — some condition failed; the first failing
  witness names the rule/atom that breaks key-locality, the classifier
  reason, the default-value predicate, or the merge-algebra
  counterexample.

Non-recursive components are BLOCKED ("not recursive"): they run once,
so there is no fixpoint to parallelize — the executor simply evaluates
them sequentially, which is not a fallback but the plan.

Surfaced as MAD901/902/903 info lints in ``repro lint``, as the
``repro shard-plan`` CLI report, as ``AnalysisReport.sharding`` on
``analyze()``, and consumed by ``plan="sharded"`` in
:mod:`repro.engine.sharded`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.aggregates.algebra import MergeAlgebraVerdict, verify_merge_algebra
from repro.analysis.classify import (
    ComponentClass,
    ComponentClassification,
    ProgramClassification,
    classify_program,
)
from repro.analysis.dependencies import Component
from repro.datalog.atoms import AggregateSubgoal, AtomSubgoal
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Variable

#: Verdict statuses, in decreasing order of good news.
SHARDABLE = "shardable"
SHARDABLE_AFTER_REWRITE = "shardable-after-rewrite"
BLOCKED = "blocked"

#: Key-assignment search budget; components whose position product exceeds
#: this are BLOCKED with an explicit witness rather than silently skipped.
MAX_KEY_ASSIGNMENTS = 4096


@dataclass(frozen=True)
class ShardWitness:
    """One checked shard-safety condition and its outcome."""

    condition: str
    detail: str
    ok: bool

    def __str__(self) -> str:
        mark = "✓" if self.ok else "✗"
        return f"{mark} {self.condition}: {self.detail}"


@dataclass(frozen=True)
class ShardKey:
    """The proven partitioning plan for one SHARDABLE component.

    ``positions`` maps every CDB predicate to the column whose value
    assigns an atom to a shard.  ``seed_rules``/``recursive_rules`` are
    indices into ``component.rules``: seed rules reference no CDB
    predicate, are evaluated once in the parent, and their derivations
    are hash-partitioned; recursive rules run inside every shard.
    """

    positions: Dict[str, int]
    seed_rules: Tuple[int, ...]
    recursive_rules: Tuple[int, ...]

    def describe(self) -> str:
        cols = ", ".join(
            f"{p}[{i}]" for p, i in sorted(self.positions.items())
        )
        return f"key columns {cols}"


@dataclass
class ComponentShardability:
    """The analysis outcome for one SCC."""

    component: Component
    status: str
    key: Optional[ShardKey] = None
    witnesses: Tuple[ShardWitness, ...] = ()
    #: Merge-algebra verdicts for every CDB aggregate function probed.
    merge_verdicts: Tuple[MergeAlgebraVerdict, ...] = ()
    #: Human-readable rewrite suggestions (SHARDABLE_AFTER_REWRITE only).
    rewrites: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status == SHARDABLE

    @property
    def witness(self) -> str:
        """The first failing condition's detail (empty when shardable)."""
        for w in self.witnesses:
            if not w.ok:
                return w.detail
        return ""

    def __str__(self) -> str:
        name = str(self.component)
        if self.status == SHARDABLE:
            assert self.key is not None
            return f"{name}: SHARDABLE — {self.key.describe()}"
        if self.status == SHARDABLE_AFTER_REWRITE:
            fixes = "; ".join(self.rewrites)
            return f"{name}: SHARDABLE after rewrite — {fixes}"
        return f"{name}: BLOCKED — {self.witness}"

    def render(self) -> str:
        """Multi-line report with the full witness chain."""
        lines = [str(self)]
        for w in self.witnesses:
            lines.append(f"  {w}")
        for v in self.merge_verdicts:
            lines.append(f"  {'✓' if v.holds else '✗'} {v}")
        return "\n".join(lines)


@dataclass
class ShardingReport:
    """Per-component shard-safety verdicts for a whole program."""

    program: Program
    components: List[ComponentShardability] = field(default_factory=list)

    @property
    def shardable(self) -> List[ComponentShardability]:
        return [c for c in self.components if c.ok]

    def for_component(
        self, component: Component
    ) -> Optional[ComponentShardability]:
        for c in self.components:
            if c.component.cdb == component.cdb:
                return c
        return None

    def __str__(self) -> str:
        if not self.components:
            return "no components"
        return "\n".join(str(c) for c in self.components)

    def render(self) -> str:
        return "\n".join(c.render() for c in self.components)


# ---------------------------------------------------------------------------
# Key-assignment search
# ---------------------------------------------------------------------------


def is_seed_rule(rule: Rule, component: Component) -> bool:
    """True iff the rule reads no CDB predicate (evaluated in the parent)."""
    return all(p not in component.cdb for p in rule.body_predicates())


def _candidate_positions(program: Program, predicate: str) -> List[int]:
    """Columns of ``predicate`` eligible as the shard key.

    The cost column of a cost predicate is excluded: its value is a
    lattice state that *moves* during the fixpoint (Definition 2.7's FD
    is key → cost, so the key columns are exactly the stable identity).
    """
    return list(range(program.decl(predicate).key_arity))


def _rule_key_violation(
    rule: Rule,
    component: Component,
    positions: Dict[str, int],
) -> Optional[str]:
    """Why ``rule`` is not key-local under ``positions`` (None if it is).

    A recursive rule is key-local when one variable — the head's key
    column — is also the key column of every CDB atom the body reads,
    including every CDB conjunct inside aggregate subgoals, *and* for
    aggregates that variable is a grouping variable (so no group ever
    spans two key values).
    """
    head_pos = positions[rule.head.predicate]
    key_var = rule.head.args[head_pos]
    if not isinstance(key_var, Variable):
        return (
            f"rule `{rule}`: head key column {head_pos} is the constant "
            f"{key_var}, not a variable"
        )
    for sg in rule.body:
        if isinstance(sg, AtomSubgoal):
            if sg.atom.predicate not in component.cdb:
                continue
            if sg.negated:
                return f"rule `{rule}`: negated recursive atom {sg.atom}"
            arg = sg.atom.args[positions[sg.atom.predicate]]
            if not isinstance(arg, Variable) or arg != key_var:
                return (
                    f"rule `{rule}`: recursive atom {sg.atom} carries key "
                    f"column {positions[sg.atom.predicate]} = {arg}, which "
                    f"is not the head key variable {key_var}"
                )
        elif isinstance(sg, AggregateSubgoal):
            grouping = rule.grouping_variables(sg)
            for conjunct in sg.conjuncts:
                if conjunct.predicate not in component.cdb:
                    continue
                arg = conjunct.args[positions[conjunct.predicate]]
                if not isinstance(arg, Variable) or arg != key_var:
                    return (
                        f"rule `{rule}`: aggregate conjunct {conjunct} "
                        f"carries key column "
                        f"{positions[conjunct.predicate]} = {arg}, which is "
                        f"not the head key variable {key_var}"
                    )
                if arg not in grouping:
                    return (
                        f"rule `{rule}`: key variable {key_var} is local to "
                        f"the aggregate {sg} — its groups span shards"
                    )
    return None


def find_shard_key(
    component: Component, program: Program
) -> Tuple[Optional[ShardKey], str]:
    """Search for a key assignment making every recursive rule key-local.

    Returns ``(key, "")`` on success or ``(None, witness_detail)`` naming
    the violation of the *best* assignment tried (the one that got
    furthest through the rules, so the witness points at the real
    obstruction rather than an arbitrary one).
    """
    preds = sorted(component.cdb)
    candidates = [_candidate_positions(program, p) for p in preds]
    for pred, cols in zip(preds, candidates):
        if not cols:
            return None, (
                f"predicate {pred} has no key column to partition on"
            )

    total = 1
    for cols in candidates:
        total *= len(cols)
    if total > MAX_KEY_ASSIGNMENTS:
        return None, (
            f"key search space has {total} assignments "
            f"(> {MAX_KEY_ASSIGNMENTS}); refusing to search"
        )

    seed_idx = tuple(
        i for i, r in enumerate(component.rules) if is_seed_rule(r, component)
    )
    recursive_idx = tuple(
        i for i in range(len(component.rules)) if i not in seed_idx
    )

    best_violation = ""
    best_depth = -1
    for combo in itertools.product(*candidates):
        positions = dict(zip(preds, combo))
        violation: Optional[str] = None
        depth = 0
        for i in recursive_idx:
            violation = _rule_key_violation(
                component.rules[i], component, positions
            )
            if violation is not None:
                break
            depth += 1
        if violation is None:
            return (
                ShardKey(
                    positions=positions,
                    seed_rules=seed_idx,
                    recursive_rules=recursive_idx,
                ),
                "",
            )
        if depth > best_depth:
            best_depth = depth
            best_violation = violation
    return None, best_violation


# ---------------------------------------------------------------------------
# Per-component analysis
# ---------------------------------------------------------------------------


def _cdb_aggregates(
    component: Component,
) -> List[Tuple[Rule, AggregateSubgoal]]:
    """Every aggregate occurrence whose conjuncts touch the CDB."""
    out: List[Tuple[Rule, AggregateSubgoal]] = []
    for rule in component.rules:
        for sg in rule.aggregate_subgoals():
            if any(c.predicate in component.cdb for c in sg.conjuncts):
                out.append((rule, sg))
    return out


def analyze_component_sharding(
    classification: ComponentClassification,
    program: Program,
) -> ComponentShardability:
    """Prove or refute shard-safety for one classified SCC."""
    component = classification.component
    witnesses: List[ShardWitness] = []
    merge_verdicts: List[MergeAlgebraVerdict] = []
    rewrites: List[str] = []
    blocked = False

    # 1. Recursion: a non-recursive component runs once; nothing to shard.
    recursive = bool(component.internal_kinds)
    witnesses.append(
        ShardWitness(
            "recursion",
            "component is recursive"
            if recursive
            else "not recursive — evaluated once, sequentially",
            recursive,
        )
    )
    blocked = blocked or not recursive

    # 2. Classification: partition soundness leans on the unique minimal
    #    model (monotone T_P); pseudo-monotonic components additionally
    #    read default-value predicates whose key universe is global.
    cls_ok = classification.certified and classification.verdict in (
        ComponentClass.MONOTONIC,
        ComponentClass.STRATIFIED,
    )
    detail = f"classified {classification.verdict.value}" + (
        " (certified)" if classification.certified else " (not certified)"
    )
    if classification.reasons and not cls_ok:
        detail += " — " + "; ".join(classification.reasons)
    witnesses.append(ShardWitness("classification", detail, cls_ok))
    blocked = blocked or not cls_ok

    # 3. Defaults: a default-value CDB predicate materializes a row for
    #    *every* key in its column universe — each shard would fabricate
    #    rows for keys it does not own.
    defaulted = sorted(
        p for p in component.cdb if program.decl(p).has_default
    )
    witnesses.append(
        ShardWitness(
            "defaults",
            "no default-value recursive predicate"
            if not defaulted
            else "default-value recursive predicate(s): "
            + ", ".join(defaulted),
            not defaulted,
        )
    )
    blocked = blocked or bool(defaulted)

    # 4. Merge algebra: every CDB aggregate's two-phase state must form a
    #    commutative monoid compatible with process, or the barrier merge
    #    of shard interpretations is not the monolithic aggregate.
    needs_rewrite = False
    if not blocked:
        occurrences = _cdb_aggregates(component)
        fn_names = sorted({sg.function for _, sg in occurrences})
        algebra_failures: List[str] = []
        for name in fn_names:
            function = program.aggregate_function(name)
            for verdict in verify_merge_algebra(function):
                merge_verdicts.append(verdict)
                if not verdict.holds:
                    algebra_failures.append(str(verdict))
        witnesses.append(
            ShardWitness(
                "merge-algebra",
                (
                    f"state merge of {', '.join(fn_names)} is "
                    "associative/commutative with identity"
                    if fn_names
                    else "no recursive aggregates"
                )
                if not algebra_failures
                else "; ".join(algebra_failures),
                not algebra_failures,
            )
        )
        blocked = blocked or bool(algebra_failures)

        # 5. Restricted form: the `=` form derives F(∅) for every group a
        #    shard can name but does not own (see module docstring).
        unrestricted = [
            (rule, sg) for rule, sg in occurrences if not sg.restricted
        ]
        witnesses.append(
            ShardWitness(
                "restricted-form",
                "every recursive aggregate uses the =r form"
                if not unrestricted
                else "`=` form over recursive predicate(s) would derive "
                "F(∅) rows for groups owned by other shards: "
                + "; ".join(f"`{sg}`" for _, sg in unrestricted),
                not unrestricted,
            )
        )
        if unrestricted:
            needs_rewrite = True
            for _, sg in unrestricted:
                rewrites.append(
                    f"rewrite `{sg}` to use `=r` "
                    f"(drops rows for empty groups — review)"
                )

    # 6. Grouping key: the structural heart of the proof.
    key: Optional[ShardKey] = None
    if not blocked:
        key, violation = find_shard_key(component, program)
        witnesses.append(
            ShardWitness(
                "grouping-key",
                key.describe() if key is not None else violation,
                key is not None,
            )
        )
        blocked = blocked or key is None

    if blocked:
        status = BLOCKED
        key = None
    elif needs_rewrite:
        status = SHARDABLE_AFTER_REWRITE
        key = None
    else:
        status = SHARDABLE

    return ComponentShardability(
        component=component,
        status=status,
        key=key,
        witnesses=tuple(witnesses),
        merge_verdicts=tuple(merge_verdicts),
        rewrites=tuple(rewrites),
    )


def analyze_sharding(
    program: Program,
    *,
    classification: Optional[ProgramClassification] = None,
) -> ShardingReport:
    """Prove or refute shard-safety for every component of ``program``.

    ``classification`` may be passed when the caller already classified
    the program (the analysis report does), to avoid re-running typing.
    """
    if classification is None:
        classification = classify_program(program)
    report = ShardingReport(program)
    for cls in classification.components:
        report.components.append(analyze_component_sharding(cls, program))
    return report
