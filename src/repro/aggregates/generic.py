"""Generic lattice aggregates: the least upper bound over any complete
lattice.

Most of Figure 1 is one function in disguise: ``min`` is the lub of
``(R, ≥)``, ``max`` the lub of ``(R, ≤)``, ``OR`` the lub of ``(B, ≤)``,
``AND`` the lub of ``(B, ≥)``, ``union`` the lub of ``(2^S, ⊆)``, and so
on.  :class:`LatticeJoin` makes the pattern first-class: given *any*
complete lattice it is an aggregate function, and it is **always
monotonic** — ``I ⊑_D I'`` maps each element below a distinct element of
``I'``, so ``⊔I ⊑ ⊔I' `` (extra elements only raise the lub further).

This is the construction modern lattice-Datalog systems (Flix, Datafun,
Bloom^L) build on; having it generic lets user-defined cost lattices get
a canonical monotonic aggregate for free — see
``examples/taint_analysis.py`` for a security-lattice application.

:class:`LatticeMeet` (glb) is also provided for LDB aggregation and for
the §6.1 discussion — but it is *antitone* in the multiset, hence
declared NONMONOTONIC: the admissibility check will only allow it on
fixed lower components.
"""

from __future__ import annotations

from typing import Any

from repro.aggregates.base import AggregateFunction, Monotonicity
from repro.lattices.base import Lattice
from repro.util.multiset import FrozenMultiset


class LatticeJoin(AggregateFunction):
    """``F(I) = ⊔ I`` over an arbitrary complete lattice — monotonic.

    ``F(∅) = ⊥`` (the empty lub), which the base class's default
    provides.

    >>> from repro.lattices import REALS_GE
    >>> from repro.util.multiset import FrozenMultiset
    >>> join = LatticeJoin(REALS_GE)          # the ≥ order: lub = min
    >>> join(FrozenMultiset([3, 1, 2]))
    1
    """

    classification = Monotonicity.MONOTONIC

    def __init__(self, lattice: Lattice, name: str | None = None) -> None:
        super().__init__(lattice, lattice)
        self.name = name or f"lub_{lattice.name}"

    def apply_nonempty(self, multiset: FrozenMultiset) -> Any:
        return self.domain.join_all(multiset.support())


class LatticeMeet(AggregateFunction):
    """``F(I) = ⊓ I`` — the §6.1 glb aggregate.  ``F(∅) = ⊤``.

    Antitone in the multiset: adding elements can only lower the glb, so
    it is declared NONMONOTONIC and admissible only over LDB predicates.
    """

    classification = Monotonicity.NONMONOTONIC

    def __init__(self, lattice: Lattice, name: str | None = None) -> None:
        super().__init__(lattice, lattice)
        self.name = name or f"glb_{lattice.name}"

    def apply_nonempty(self, multiset: FrozenMultiset) -> Any:
        return self.domain.meet_all(multiset.support())

    def empty_value(self) -> Any:
        return self.range_.top
