"""Generic lattice aggregates: the least upper bound over any complete
lattice.

Most of Figure 1 is one function in disguise: ``min`` is the lub of
``(R, ≥)``, ``max`` the lub of ``(R, ≤)``, ``OR`` the lub of ``(B, ≤)``,
``AND`` the lub of ``(B, ≥)``, ``union`` the lub of ``(2^S, ⊆)``, and so
on.  :class:`LatticeJoin` makes the pattern first-class: given *any*
complete lattice it is an aggregate function, and it is **always
monotonic** — ``I ⊑_D I'`` maps each element below a distinct element of
``I'``, so ``⊔I ⊑ ⊔I' `` (extra elements only raise the lub further).

This is the construction modern lattice-Datalog systems (Flix, Datafun,
Bloom^L) build on; having it generic lets user-defined cost lattices get
a canonical monotonic aggregate for free — see
``examples/taint_analysis.py`` for a security-lattice application.

:class:`LatticeMeet` (glb) is also provided for LDB aggregation and for
the §6.1 discussion — but it is *antitone* in the multiset, hence
declared NONMONOTONIC: the admissibility check will only allow it on
fixed lower components.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.aggregates.base import (
    AggregateFunction,
    EmptyAggregateError,
    Monotonicity,
)
from repro.lattices.base import Lattice


class _FoldAggregate(AggregateFunction):
    """Two-phase state for any associative/commutative lattice combiner.

    The state is ``None`` (no element yet) or the running combination;
    ``merge`` is the ``None``-absorbing combiner, which inherits
    associativity/commutativity from the lattice operation itself.
    """

    def _combine(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def state_create(self) -> Any:
        return None

    def process(self, state: Any, value: Any, count: int = 1) -> Any:
        return value if state is None else self._combine(state, value)

    def merge(self, state: Any, other: Any) -> Any:
        if state is None:
            return other
        if other is None:
            return state
        return self._combine(state, other)

    def convert(self, state: Any) -> Any:
        if state is None:
            raise EmptyAggregateError(f"{self.name}: empty partial state")
        return state


class LatticeJoin(_FoldAggregate):
    """``F(I) = ⊔ I`` over an arbitrary complete lattice — monotonic.

    ``F(∅) = ⊥`` (the empty lub), which the base class's default
    provides.

    >>> from repro.lattices import REALS_GE
    >>> from repro.util.multiset import FrozenMultiset
    >>> join = LatticeJoin(REALS_GE)          # the ≥ order: lub = min
    >>> join(FrozenMultiset([3, 1, 2]))
    1
    """

    classification = Monotonicity.MONOTONIC

    def __init__(self, lattice: Lattice, name: Optional[str] = None) -> None:
        super().__init__(lattice, lattice)
        self.name = name or f"lub_{lattice.name}"

    def _combine(self, a: Any, b: Any) -> Any:
        return self.domain.join(a, b)


class LatticeMeet(_FoldAggregate):
    """``F(I) = ⊓ I`` — the §6.1 glb aggregate.  ``F(∅) = ⊤``.

    Antitone in the multiset: adding elements can only lower the glb, so
    it is declared NONMONOTONIC and admissible only over LDB predicates.
    (Its partial state is still perfectly mergeable — ⊓ is associative
    and commutative — but shard safety additionally requires
    monotonicity, so the analyzer blocks it anyway.)
    """

    classification = Monotonicity.NONMONOTONIC

    def __init__(self, lattice: Lattice, name: Optional[str] = None) -> None:
        super().__init__(lattice, lattice)
        self.name = name or f"glb_{lattice.name}"

    def _combine(self, a: Any, b: Any) -> Any:
        return self.domain.meet(a, b)

    def empty_value(self) -> Any:
        return self.range_.top
