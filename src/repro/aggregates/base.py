"""Aggregate functions over multisets (Definition 2.4).

An :class:`AggregateFunction` is a map ``F : M(D) → R`` from multisets over
a cost domain ``D`` into a range ``R``, each equipped with a lattice
(Section 4.1).  Instances carry:

* ``domain`` / ``range_`` — the lattices ``(D, ⊑_D)`` and ``(R, ⊑_R)``;
* ``classification`` — the *declared* monotonicity class used by the
  admissibility check (Definition 4.5).  The declared class is verified
  empirically by :mod:`repro.aggregates.monotonicity` in the test suite and
  the Figure 1 benchmark, so a mis-declared function is caught.
* ``has_empty_value`` — whether ``F(∅)`` is defined.  The ``=`` form of an
  aggregate subgoal needs it (empty groups are semantically meaningful);
  the ``=r`` form never evaluates ``F`` on the empty multiset
  (Definition 2.4: a ground ``=r`` instance is *false* on the empty
  multiset).

Evaluation is *two-phase*, the classic mergeable-aggregate interface
(``state_create / process / merge / convert``): a mutable-free partial
state is created empty, folds elements via :meth:`process`, combines with
other partial states via :meth:`merge`, and produces the final value via
:meth:`convert`.  ``F(I)`` itself is defined as
``convert(fold(process, I, state_create()))`` — there is exactly one
aggregation code path, so the two-phase contract is exercised by every
solve, not only by sharded ones.

Why the interface matters: when ``merge`` is associative and commutative
with ``state_create()`` as identity, a partition of the multiset may be
aggregated in any grouping and any order —
``convert(merge(fold(A), fold(B))) = F(A ⊎ B)`` — which is exactly what
licenses partitioned/sharded evaluation (docs/PARALLELISM.md) and, later,
incremental maintenance.  The algebra is verified empirically per function
by :mod:`repro.aggregates.algebra`, and the shard-safety analyzer
(:mod:`repro.analysis.sharding`) consults that proof before certifying a
component for ``plan="sharded"``.
"""

from __future__ import annotations

import abc
import enum
from typing import Any

from repro.lattices.base import Lattice
from repro.util.multiset import FrozenMultiset


class Monotonicity(enum.Enum):
    """Monotonicity class of an aggregate function (Definitions 4.1, §4.1.1)."""

    #: ``I ⊑_D I' ⇒ F(I) ⊑_R F(I')`` for all multisets.
    MONOTONIC = "monotonic"
    #: The implication holds for equal-cardinality multisets only.
    PSEUDO_MONOTONIC = "pseudo-monotonic"
    #: Neither.
    NONMONOTONIC = "nonmonotonic"


class EmptyAggregateError(ValueError):
    """``F(∅)`` was requested for a function without an empty value."""


class AggregateFunction(abc.ABC):
    """A multiset aggregate ``F : M(D) → R`` with declared lattices.

    Subclasses implement the two-phase interface
    (:meth:`state_create` / :meth:`process` / :meth:`merge` /
    :meth:`convert`); the public entry point :meth:`__call__` folds a
    whole multiset through it and handles the empty multiset uniformly.
    """

    #: Name used in rule text, e.g. ``C = min{D : p(X, D)}``.
    name: str = "aggregate"

    #: Declared monotonicity class; verified empirically in tests.
    classification: Monotonicity = Monotonicity.NONMONOTONIC

    #: Whether ``F(∅)`` is defined (see module docstring).
    has_empty_value: bool = True

    def __init__(self, domain: Lattice, range_: Lattice) -> None:
        self.domain = domain
        self.range_ = range_

    # -- the mergeable two-phase interface -----------------------------------

    @abc.abstractmethod
    def state_create(self) -> Any:
        """A fresh partial state representing the empty multiset.

        Must be the identity of :meth:`merge`:
        ``merge(s, state_create()) = s`` for every reachable state.
        """

    @abc.abstractmethod
    def process(self, state: Any, value: Any, count: int = 1) -> Any:
        """Fold ``count`` occurrences of ``value`` into ``state``.

        States are treated as immutable values: ``process`` returns the
        new state and must not mutate its argument (partial states cross
        process boundaries in sharded evaluation).
        """

    @abc.abstractmethod
    def merge(self, state: Any, other: Any) -> Any:
        """Combine two partial states.

        The shard-safety contract (verified by
        :mod:`repro.aggregates.algebra`): associative, commutative, with
        :meth:`state_create` as identity, and compatible with
        :meth:`process` — ``merge(fold(A), fold(B)) ≡ fold(A ⊎ B)``.
        """

    @abc.abstractmethod
    def convert(self, state: Any) -> Any:
        """Finalize a partial state into the aggregate's value.

        Raises :class:`EmptyAggregateError` on the empty state when the
        function has no defined ``F(∅)`` (callers reach empty multisets
        only through :meth:`__call__`, which routes them to
        :meth:`empty_value`).
        """

    # -- evaluation ----------------------------------------------------------

    def fold(self, multiset: FrozenMultiset) -> Any:
        """The partial state of a whole multiset (phase one)."""
        state = self.state_create()
        for value, count in multiset.items():
            state = self.process(state, value, count)
        return state

    def apply_nonempty(self, multiset: FrozenMultiset) -> Any:
        """Evaluate ``F`` on a non-empty multiset via the two-phase fold."""
        return self.convert(self.fold(multiset))

    def empty_value(self) -> Any:
        """``F(∅)``.

        The default is the range's bottom, which is correct for every
        monotonic function in Figure 1 (sum∅ = 0, max∅ = ⊥, count∅ = 0,
        union∅ = ∅, intersection∅ = S, ...).  Functions without a defined
        empty value set ``has_empty_value = False`` instead.
        """
        if not self.has_empty_value:
            raise EmptyAggregateError(f"{self.name}(∅) is undefined")
        return self.range_.bottom

    def __call__(self, multiset: FrozenMultiset) -> Any:
        if not multiset:
            return self.empty_value()
        return self.apply_nonempty(multiset)

    # -- metadata ------------------------------------------------------------

    @property
    def is_monotonic(self) -> bool:
        return self.classification is Monotonicity.MONOTONIC

    @property
    def is_pseudo_monotonic(self) -> bool:
        """True for pseudo-monotonic *or* (a fortiori) monotonic functions.

        Definition 4.1's property is implied by full monotonicity, and the
        admissibility condition only ever asks "at least pseudo-monotonic".
        """
        return self.classification in (
            Monotonicity.MONOTONIC,
            Monotonicity.PSEUDO_MONOTONIC,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} {self.name} : M({self.domain.name}) "
            f"→ {self.range_.name} [{self.classification.value}]>"
        )
