"""Aggregate functions over multisets (Definition 2.4).

An :class:`AggregateFunction` is a map ``F : M(D) → R`` from multisets over
a cost domain ``D`` into a range ``R``, each equipped with a lattice
(Section 4.1).  Instances carry:

* ``domain`` / ``range_`` — the lattices ``(D, ⊑_D)`` and ``(R, ⊑_R)``;
* ``classification`` — the *declared* monotonicity class used by the
  admissibility check (Definition 4.5).  The declared class is verified
  empirically by :mod:`repro.aggregates.monotonicity` in the test suite and
  the Figure 1 benchmark, so a mis-declared function is caught.
* ``has_empty_value`` — whether ``F(∅)`` is defined.  The ``=`` form of an
  aggregate subgoal needs it (empty groups are semantically meaningful);
  the ``=r`` form never evaluates ``F`` on the empty multiset
  (Definition 2.4: a ground ``=r`` instance is *false* on the empty
  multiset).
"""

from __future__ import annotations

import abc
import enum
from typing import Any

from repro.lattices.base import Lattice
from repro.util.multiset import FrozenMultiset


class Monotonicity(enum.Enum):
    """Monotonicity class of an aggregate function (Definitions 4.1, §4.1.1)."""

    #: ``I ⊑_D I' ⇒ F(I) ⊑_R F(I')`` for all multisets.
    MONOTONIC = "monotonic"
    #: The implication holds for equal-cardinality multisets only.
    PSEUDO_MONOTONIC = "pseudo-monotonic"
    #: Neither.
    NONMONOTONIC = "nonmonotonic"


class EmptyAggregateError(ValueError):
    """``F(∅)`` was requested for a function without an empty value."""


class AggregateFunction(abc.ABC):
    """A multiset aggregate ``F : M(D) → R`` with declared lattices.

    Subclasses implement :meth:`apply_nonempty`; the public entry point
    :meth:`__call__` handles the empty multiset uniformly.
    """

    #: Name used in rule text, e.g. ``C = min{D : p(X, D)}``.
    name: str = "aggregate"

    #: Declared monotonicity class; verified empirically in tests.
    classification: Monotonicity = Monotonicity.NONMONOTONIC

    #: Whether ``F(∅)`` is defined (see module docstring).
    has_empty_value: bool = True

    def __init__(self, domain: Lattice, range_: Lattice) -> None:
        self.domain = domain
        self.range_ = range_

    # -- evaluation ----------------------------------------------------------

    @abc.abstractmethod
    def apply_nonempty(self, multiset: FrozenMultiset) -> Any:
        """Evaluate ``F`` on a non-empty multiset."""

    def empty_value(self) -> Any:
        """``F(∅)``.

        The default is the range's bottom, which is correct for every
        monotonic function in Figure 1 (sum∅ = 0, max∅ = ⊥, count∅ = 0,
        union∅ = ∅, intersection∅ = S, ...).  Functions without a defined
        empty value set ``has_empty_value = False`` instead.
        """
        if not self.has_empty_value:
            raise EmptyAggregateError(f"{self.name}(∅) is undefined")
        return self.range_.bottom

    def __call__(self, multiset: FrozenMultiset) -> Any:
        if not multiset:
            return self.empty_value()
        return self.apply_nonempty(multiset)

    # -- metadata ------------------------------------------------------------

    @property
    def is_monotonic(self) -> bool:
        return self.classification is Monotonicity.MONOTONIC

    @property
    def is_pseudo_monotonic(self) -> bool:
        """True for pseudo-monotonic *or* (a fortiori) monotonic functions.

        Definition 4.1's property is implied by full monotonicity, and the
        admissibility condition only ever asks "at least pseudo-monotonic".
        """
        return self.classification in (
            Monotonicity.MONOTONIC,
            Monotonicity.PSEUDO_MONOTONIC,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} {self.name} : M({self.domain.name}) "
            f"→ {self.range_.name} [{self.classification.value}]>"
        )
