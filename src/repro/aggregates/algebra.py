"""Empirical merge-algebra verification for two-phase aggregates.

Sharded evaluation (docs/PARALLELISM.md) splits a group's multiset ``I``
across shards as ``I = I₁ ⊎ … ⊎ Iₖ``, folds each partition independently,
and combines partial states at the barrier.  That equals the monolithic
``F(I)`` exactly when the state algebra ``(S, merge, state_create())`` is
a commutative monoid that :meth:`~AggregateFunction.process` acts on
compatibly:

* **soundness**     ``convert(merge(fold(A), fold(B))) = F(A ⊎ B)``
* **commutativity** ``merge(s, t) ≡ merge(t, s)``
* **associativity** ``merge(merge(s, t), u) ≡ merge(s, merge(t, u))``
* **identity**      ``merge(s, state_create()) ≡ s ≡ merge(state_create(), s)``

These are checked *empirically* over multisets drawn from the domain
lattice's sample — the same methodology as
:mod:`repro.aggregates.monotonicity` for the declared monotonicity class.
Partial states are opaque, so two states are compared through
:meth:`~AggregateFunction.convert` under the range lattice's ulp-tolerant
:meth:`~repro.lattices.base.Lattice.close` (float addition is associative
only up to rounding; an ulp of noise must not fail ``sum``).

The shard-safety analyzer (:mod:`repro.analysis.sharding`) runs
:func:`verify_merge_algebra` per aggregate occurrence and records the
verdicts in its witness chain; the hypothesis suite in
``tests/test_merge_algebra.py`` stresses the same properties with
randomized multisets.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.aggregates.base import AggregateFunction, EmptyAggregateError
from repro.lattices.base import Lattice
from repro.util.multiset import FrozenMultiset

#: The properties checked, in report order.
MERGE_PROPERTIES = ("soundness", "commutativity", "associativity", "identity")


@dataclass
class MergeAlgebraVerdict:
    """Result of empirically probing one merge-algebra property."""

    function_name: str
    property_checked: str  # one of MERGE_PROPERTIES
    cases_checked: int
    holds: bool
    counterexample: Optional[str] = None

    def __str__(self) -> str:
        status = "HOLDS" if self.holds else "FAILS"
        line = (
            f"{self.function_name}: merge {self.property_checked} {status} "
            f"({self.cases_checked} cases)"
        )
        if self.counterexample:
            line += f"  counterexample: {self.counterexample}"
        return line


def sample_multisets(
    lattice: Lattice,
    *,
    max_size: int = 3,
    rng: Optional[random.Random] = None,
    extra_random: int = 24,
) -> List[FrozenMultiset]:
    """Small multisets over the lattice's sample, systematic + randomized.

    Mirrors :func:`repro.aggregates.monotonicity.related_multiset_pairs`
    but without the ⊑-relatedness constraint — the merge algebra must hold
    for *arbitrary* partitions, not just ordered ones.
    """
    rng = rng or random.Random(92)  # deterministic: PODS '92
    provided = lattice.sample()
    if provided is None:
        raise ValueError(
            f"lattice {lattice.name} has no sample; cannot probe empirically"
        )
    elements = list(itertools.islice(provided, 8))
    small = elements[:4]

    multisets: List[FrozenMultiset] = []
    for size in range(0, max_size + 1):
        for combo in itertools.combinations_with_replacement(small, size):
            multisets.append(FrozenMultiset(combo))
    for _ in range(extra_random):
        picks = [rng.choice(elements) for _ in range(rng.randint(1, max_size))]
        multisets.append(FrozenMultiset(picks))
    return multisets


def multiset_union(a: FrozenMultiset, b: FrozenMultiset) -> FrozenMultiset:
    """The multiset (bag) union ``A ⊎ B`` — counts add."""
    counts: Dict[Any, int] = {}
    for value, count in a.items():
        counts[value] = counts.get(value, 0) + count
    for value, count in b.items():
        counts[value] = counts.get(value, 0) + count
    return FrozenMultiset.from_counts(counts)


def states_equivalent(function: AggregateFunction, s: Any, t: Any) -> bool:
    """Observational equivalence of two partial states.

    States are opaque (and may be order-dependent representations of the
    same value, e.g. float partial sums), so they are compared through
    :meth:`convert` under the range lattice's ulp-tolerant ``close``.
    Two states whose ``convert`` both raise
    :class:`~repro.aggregates.base.EmptyAggregateError` are equivalent
    (both represent the empty multiset).
    """
    try:
        vs = function.convert(s)
    except EmptyAggregateError:
        try:
            function.convert(t)
        except EmptyAggregateError:
            return True
        return False
    try:
        vt = function.convert(t)
    except EmptyAggregateError:
        return False
    return function.range_.close(vs, vt)


def _verdict(
    function: AggregateFunction,
    prop: str,
    cases: int,
    counterexample: Optional[str],
) -> MergeAlgebraVerdict:
    return MergeAlgebraVerdict(
        function_name=function.name,
        property_checked=prop,
        cases_checked=cases,
        holds=counterexample is None,
        counterexample=counterexample,
    )


def check_soundness(
    function: AggregateFunction, multisets: List[FrozenMultiset]
) -> MergeAlgebraVerdict:
    """``convert(merge(fold(A), fold(B))) = F(A ⊎ B)`` over sampled pairs."""
    cases = 0
    for a, b in itertools.product(multisets, repeat=2):
        union = multiset_union(a, b)
        if not union:
            continue  # F(∅) is empty_value territory, not the merge path
        cases += 1
        merged = function.merge(function.fold(a), function.fold(b))
        direct = function.apply_nonempty(union)
        sharded = function.convert(merged)
        if not function.range_.close(sharded, direct):
            return _verdict(
                function,
                "soundness",
                cases,
                f"fold({sorted(a, key=repr)}) ⊎ fold({sorted(b, key=repr)}) "
                f"merges to {sharded!r} but F(A ⊎ B) = {direct!r}",
            )
    return _verdict(function, "soundness", cases, None)


def check_commutativity(
    function: AggregateFunction, multisets: List[FrozenMultiset]
) -> MergeAlgebraVerdict:
    """``merge(s, t) ≡ merge(t, s)`` over sampled partial states."""
    states = [function.fold(m) for m in multisets]
    cases = 0
    for s, t in itertools.combinations(states, 2):
        cases += 1
        if not states_equivalent(
            function, function.merge(s, t), function.merge(t, s)
        ):
            return _verdict(
                function,
                "commutativity",
                cases,
                f"merge({s!r}, {t!r}) ≢ merge({t!r}, {s!r})",
            )
    return _verdict(function, "commutativity", cases, None)


def check_associativity(
    function: AggregateFunction, multisets: List[FrozenMultiset]
) -> MergeAlgebraVerdict:
    """``merge(merge(s, t), u) ≡ merge(s, merge(t, u))`` over sampled triples.

    Cubic in the sample, so the state pool is truncated to keep the whole
    verdict suite interactive (the hypothesis suite covers the long tail).
    """
    states = [function.fold(m) for m in multisets[:12]]
    cases = 0
    for s, t, u in itertools.product(states, repeat=3):
        cases += 1
        left = function.merge(function.merge(s, t), u)
        right = function.merge(s, function.merge(t, u))
        if not states_equivalent(function, left, right):
            return _verdict(
                function,
                "associativity",
                cases,
                f"states {s!r}, {t!r}, {u!r}: "
                f"(s·t)·u = {left!r} ≢ s·(t·u) = {right!r}",
            )
    return _verdict(function, "associativity", cases, None)


def check_identity(
    function: AggregateFunction, multisets: List[FrozenMultiset]
) -> MergeAlgebraVerdict:
    """``state_create()`` is a two-sided identity of ``merge``."""
    cases = 0
    for m in multisets:
        cases += 1
        s = function.fold(m)
        empty = function.state_create()
        if not states_equivalent(function, function.merge(s, empty), s):
            return _verdict(
                function, "identity", cases, f"merge({s!r}, ∅-state) ≢ {s!r}"
            )
        if not states_equivalent(function, function.merge(empty, s), s):
            return _verdict(
                function, "identity", cases, f"merge(∅-state, {s!r}) ≢ {s!r}"
            )
    return _verdict(function, "identity", cases, None)


#: Default-parameter verdicts, memoized per concrete function.  The
#: sweep is deterministic and the behavior of an aggregate is fully
#: determined by its class and lattice pair, but it probes ~10^4
#: fold/merge cases per function — expensive enough that an uncached
#: analyzer would dominate small solves (``analyze_program`` runs the
#: shard-safety pass, and hence this verifier, on every solve).
_VERDICT_CACHE: Dict[
    Tuple[type, str, str, str], List[MergeAlgebraVerdict]
] = {}


def verify_merge_algebra(
    function: AggregateFunction,
    *,
    max_size: int = 3,
    rng: Optional[random.Random] = None,
) -> List[MergeAlgebraVerdict]:
    """Probe all four merge-algebra properties of one aggregate function.

    Returns one verdict per property in :data:`MERGE_PROPERTIES` order.
    Sharded evaluation is licensed only when *all four* hold — the
    shard-safety analyzer treats any failure as a BLOCKED witness.
    """
    cacheable = max_size == 3 and rng is None
    key = (
        type(function),
        function.name,
        function.domain.name,
        function.range_.name,
    )
    if cacheable and key in _VERDICT_CACHE:
        return list(_VERDICT_CACHE[key])
    multisets = sample_multisets(function.domain, max_size=max_size, rng=rng)
    verdicts = [
        check_soundness(function, multisets),
        check_commutativity(function, multisets),
        check_associativity(function, multisets),
        check_identity(function, multisets),
    ]
    if cacheable:
        _VERDICT_CACHE[key] = list(verdicts)
    return verdicts


def merge_algebra_holds(
    function: AggregateFunction, *, max_size: int = 3
) -> Tuple[bool, List[MergeAlgebraVerdict]]:
    """Convenience wrapper: (all four properties hold, the verdicts)."""
    verdicts = verify_merge_algebra(function, max_size=max_size)
    return all(v.holds for v in verdicts), verdicts
