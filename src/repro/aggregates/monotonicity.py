"""The multiset order ``⊑_D`` and empirical monotonicity checking (§4.1).

``I ⊑_D I'`` holds iff there is an *injective* map ``m`` from the elements
of ``I`` to the elements of ``I'`` with ``i ⊑_D m(i)``.  Two decision
procedures:

* **chains** — sort both multisets ⊑-descending; a saturating injection
  exists iff the i-th largest element of ``I`` is ⊑ the i-th largest
  element of ``I'`` for every i (a standard exchange argument);
* **general partial orders** — maximum bipartite matching on the
  compatibility graph (Hopcroft–Karp, :mod:`repro.util.matching`).

The empirical checkers generate ⊑-related multiset pairs from a lattice's
sample and report a verdict with a concrete counterexample when the
declared monotonicity class fails.  They back the test suite and the
Figure 1 benchmark; they are also how a user validates a custom aggregate
before trusting the admissibility analysis with it.
"""

from __future__ import annotations

import functools
import itertools
import random
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.aggregates.base import AggregateFunction, Monotonicity
from repro.lattices.base import Lattice
from repro.util.matching import has_saturating_matching
from repro.util.multiset import FrozenMultiset


def multiset_leq(
    lattice: Lattice, smaller: FrozenMultiset, larger: FrozenMultiset
) -> bool:
    """Decide ``smaller ⊑_D larger`` under ``lattice``'s order.

    >>> from repro.lattices import REALS_LE
    >>> multiset_leq(REALS_LE, FrozenMultiset([1, 2]), FrozenMultiset([2, 3]))
    True
    >>> multiset_leq(REALS_LE, FrozenMultiset([1, 1]), FrozenMultiset([5]))
    False
    """
    if len(smaller) > len(larger):
        return False
    if not smaller:
        return True
    if lattice.is_chain:
        return _chain_multiset_leq(lattice, smaller, larger)
    return _matching_multiset_leq(lattice, smaller, larger)


def _sorted_descending(lattice: Lattice, multiset: FrozenMultiset) -> List[Any]:
    def compare(a: Any, b: Any) -> int:
        if lattice.equivalent(a, b):
            return 0
        return -1 if lattice.leq(b, a) else 1

    return sorted(multiset, key=functools.cmp_to_key(compare))


def _chain_multiset_leq(
    lattice: Lattice, smaller: FrozenMultiset, larger: FrozenMultiset
) -> bool:
    left = _sorted_descending(lattice, smaller)
    right = _sorted_descending(lattice, larger)
    return all(lattice.leq(a, b) for a, b in zip(left, right))


def _matching_multiset_leq(
    lattice: Lattice, smaller: FrozenMultiset, larger: FrozenMultiset
) -> bool:
    left = list(smaller)
    right = list(larger)
    adjacency = [
        [j for j, b in enumerate(right) if lattice.leq(a, b)] for a in left
    ]
    return has_saturating_matching(len(left), len(right), adjacency)


# ---------------------------------------------------------------------------
# Empirical verification
# ---------------------------------------------------------------------------


@dataclass
class MonotonicityVerdict:
    """Result of empirically probing an aggregate function."""

    function_name: str
    property_checked: str  # "monotonic" or "pseudo-monotonic"
    pairs_checked: int
    holds: bool
    counterexample: Optional[Tuple[FrozenMultiset, FrozenMultiset, Any, Any]] = None

    def __str__(self) -> str:
        status = "HOLDS" if self.holds else "FAILS"
        line = (
            f"{self.function_name}: {self.property_checked} {status} "
            f"({self.pairs_checked} pairs)"
        )
        if self.counterexample is not None:
            i, i2, fi, fi2 = self.counterexample
            line += f"  counterexample: F({sorted(i, key=repr)}) = {fi!r} " \
                    f"⋢ F({sorted(i2, key=repr)}) = {fi2!r}"
        return line


def _sample_elements(lattice: Lattice, limit: int = 8) -> List[Any]:
    provided = lattice.sample()
    if provided is None:
        raise ValueError(
            f"lattice {lattice.name} has no sample; cannot probe empirically"
        )
    return list(itertools.islice(provided, limit))


def related_multiset_pairs(
    lattice: Lattice,
    *,
    max_size: int = 3,
    same_cardinality: bool = False,
    rng: random.Random | None = None,
    extra_random: int = 60,
) -> List[Tuple[FrozenMultiset, FrozenMultiset]]:
    """Generate ``(I, I')`` pairs with ``I ⊑_D I'``.

    Systematic small pairs (every multiset over a truncated sample up to
    ``max_size``, paired when related) plus ``extra_random`` randomized
    bump-and-extend pairs.  With ``same_cardinality`` only equal-size pairs
    are produced (for pseudo-monotonicity probing, Definition 4.1).
    """
    rng = rng or random.Random(92)  # deterministic: PODS '92
    elements = _sample_elements(lattice)
    small = elements[:4]

    multisets: List[FrozenMultiset] = []
    for size in range(0, max_size + 1):
        for combo in itertools.combinations_with_replacement(small, size):
            multisets.append(FrozenMultiset(combo))

    pairs: List[Tuple[FrozenMultiset, FrozenMultiset]] = []
    for a, b in itertools.product(multisets, repeat=2):
        if same_cardinality and len(a) != len(b):
            continue
        if not same_cardinality and len(a) > len(b):
            continue
        if multiset_leq(lattice, a, b):
            pairs.append((a, b))

    for _ in range(extra_random):
        base = [rng.choice(elements) for _ in range(rng.randint(1, max_size))]
        bumped = []
        for v in base:
            above = [u for u in elements if lattice.leq(v, u)]
            bumped.append(rng.choice(above) if above else v)
        if not same_cardinality and rng.random() < 0.5:
            bumped.append(rng.choice(elements))
        pairs.append((FrozenMultiset(base), FrozenMultiset(bumped)))
    return pairs


def _probe(
    function: AggregateFunction,
    pairs: Sequence[Tuple[FrozenMultiset, FrozenMultiset]],
    property_name: str,
) -> MonotonicityVerdict:
    for smaller, larger in pairs:
        try:
            f_small = function(smaller)
            f_large = function(larger)
        except ValueError:
            continue  # e.g. average(∅): the pair is outside F's domain
        if not function.range_.leq(f_small, f_large):
            return MonotonicityVerdict(
                function_name=function.name,
                property_checked=property_name,
                pairs_checked=len(pairs),
                holds=False,
                counterexample=(smaller, larger, f_small, f_large),
            )
    return MonotonicityVerdict(
        function_name=function.name,
        property_checked=property_name,
        pairs_checked=len(pairs),
        holds=True,
    )


def verify_monotonic(
    function: AggregateFunction, *, max_size: int = 3
) -> MonotonicityVerdict:
    """Empirically probe full monotonicity (Definition in §4.1)."""
    pairs = related_multiset_pairs(function.domain, max_size=max_size)
    return _probe(function, pairs, "monotonic")


def verify_pseudo_monotonic(
    function: AggregateFunction, *, max_size: int = 3
) -> MonotonicityVerdict:
    """Empirically probe pseudo-monotonicity (Definition 4.1)."""
    pairs = related_multiset_pairs(
        function.domain, max_size=max_size, same_cardinality=True
    )
    return _probe(function, pairs, "pseudo-monotonic")


def verify_declared_class(function: AggregateFunction) -> List[MonotonicityVerdict]:
    """Check that a function's behaviour matches its declared class.

    Returns the verdicts that must hold for the declaration to be sound:
    a MONOTONIC function must pass both probes; a PSEUDO_MONOTONIC one must
    pass the fixed-cardinality probe.  (A NONMONOTONIC declaration asserts
    nothing, so nothing is checked.)
    """
    verdicts: List[MonotonicityVerdict] = []
    if function.classification is Monotonicity.MONOTONIC:
        verdicts.append(verify_monotonic(function))
        verdicts.append(verify_pseudo_monotonic(function))
    elif function.classification is Monotonicity.PSEUDO_MONOTONIC:
        verdicts.append(verify_pseudo_monotonic(function))
    return verdicts
