"""The aggregate functions of Figure 1, plus the paper's extras.

Each class fixes the lattices of its Figure 1 row by default; the two
boolean aggregates and the two extrema come in *both* orientations because
the paper uses both (``AND`` is monotonic on ``(B, ≥)`` — row 5 — but only
pseudo-monotonic on ``(B, ≤)``, which is the orientation the circuit
program of Example 4.4 needs; dually for ``min``/``max``, §4.1.1).

``average`` (Example 2.1) and ``halfsum`` (Example 5.1) round out the set:
``average`` is pseudo-monotonic with no empty value, ``halfsum`` is fully
monotonic and drives the beyond-ω iteration example.

Every function implements the mergeable two-phase interface of
:class:`~repro.aggregates.base.AggregateFunction`
(``state_create / process / merge / convert``); the partial states are
plain picklable values (numbers, tuples, frozensets, or ``None`` for "no
element seen yet"), so they can cross process boundaries in sharded
evaluation.  The merge algebra of each state — associativity,
commutativity, identity — is verified empirically by
:mod:`repro.aggregates.algebra` and the test suite.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, FrozenSet, Iterable, Optional, Tuple

from repro.aggregates.base import (
    AggregateFunction,
    EmptyAggregateError,
    Monotonicity,
)
from repro.lattices import (
    BOOL_GE,
    BOOL_LE,
    INF,
    NATURALS_LE,
    NONNEG_REALS_LE,
    POS_INTS_LE,
    REALS_GE,
    REALS_LE,
)
from repro.lattices.base import Lattice
from repro.lattices.sets import PowersetIntersection, PowersetUnion
from repro.util.multiset import FrozenMultiset


class _ExtremumMixin(AggregateFunction):
    """Shared two-phase state for the four min/max variants.

    The state is ``None`` (no element yet) or the numeric extremum so
    far; ``merge`` is the ``None``-absorbing extremum of two states —
    associative and commutative because ``min``/``max`` are, with
    ``None`` as identity.
    """

    #: ``min`` or ``max``; fixed by the concrete subclass.
    _pick: Callable[..., Any]

    def state_create(self) -> Optional[Any]:
        return None

    def process(self, state: Optional[Any], value: Any, count: int = 1) -> Any:
        return value if state is None else type(self)._pick(state, value)

    def merge(self, state: Optional[Any], other: Optional[Any]) -> Optional[Any]:
        if state is None:
            return other
        if other is None:
            return state
        return type(self)._pick(state, other)

    def convert(self, state: Optional[Any]) -> Any:
        if state is None:
            raise EmptyAggregateError(f"{self.name}: empty partial state")
        return state


class Minimum(_ExtremumMixin):
    """``min`` on ``(R ∪ {±∞}, ≥)`` — Figure 1 row 3.  ``min(∅) = +∞``.

    Under the ≥ order, growing the multiset can only *lower* the numeric
    minimum, which is a ⊑-increase — hence monotonic.
    """

    name = "min"
    classification = Monotonicity.MONOTONIC
    _pick = min

    def __init__(self, domain: Lattice | None = None) -> None:
        lattice = domain or REALS_GE
        super().__init__(lattice, lattice)


class MinimumAscending(Minimum):
    """``min`` viewed against the ≤ order: pseudo-monotonic only (§4.1.1)."""

    name = "min_le"
    classification = Monotonicity.PSEUDO_MONOTONIC

    def __init__(self) -> None:
        AggregateFunction.__init__(self, REALS_LE, REALS_LE)

    def empty_value(self) -> Any:
        # min over (R, ≤) has no sensible ∅ value below every element
        # except -∞ = ⊥, which the default provides.
        return self.range_.bottom


class Maximum(_ExtremumMixin):
    """``max`` on ``(R ∪ {±∞}, ≤)`` — Figure 1 row 1.  ``max(∅) = -∞``."""

    name = "max"
    classification = Monotonicity.MONOTONIC
    _pick = max

    def __init__(self, domain: Lattice | None = None) -> None:
        lattice = domain or REALS_LE
        super().__init__(lattice, lattice)


class MaximumNonNegative(Maximum):
    """``max`` on ``(R* ∪ {∞}, ≤)`` — Figure 1 row 2.  ``max(∅) = 0``."""

    name = "max_nonneg"

    def __init__(self) -> None:
        AggregateFunction.__init__(self, NONNEG_REALS_LE, NONNEG_REALS_LE)


class MaximumDescending(Maximum):
    """``max`` viewed against the ≥ order: pseudo-monotonic only (§4.1.1)."""

    name = "max_ge"
    classification = Monotonicity.PSEUDO_MONOTONIC

    def __init__(self) -> None:
        AggregateFunction.__init__(self, REALS_GE, REALS_GE)


#: Partial sum state: (running total, every element so far was an int).
_SumState = Tuple[Any, bool]


class Sum(AggregateFunction):
    """``sum`` on ``(R* ∪ {∞}, ≤)`` — Figure 1 row 4.  ``sum(∅) = 0``.

    Only non-negative values keep ``sum`` monotonic: adding an element can
    then only increase the total.

    The partial state tracks ``(total, all_int)``: integer totals over
    all-integer multisets finalize as ``int`` so interpretations print
    cleanly, and the flag merges with ``and`` — associative/commutative
    alongside ``+``.

    ``fold`` iterates the multiset in sorted value order: float addition
    is associative only up to rounding, and a canonical order makes the
    result independent of how the group's rows were derived — sequential
    evaluators and hash-partitioned shards (docs/PARALLELISM.md) then
    agree bit for bit, not just within an ulp.
    """

    name = "sum"
    classification = Monotonicity.MONOTONIC

    def __init__(self, domain: Lattice | None = None) -> None:
        lattice = domain or NONNEG_REALS_LE
        super().__init__(lattice, lattice)

    def fold(self, multiset: FrozenMultiset) -> _SumState:
        state = self.state_create()
        for value, count in sorted(multiset.items()):
            state = self.process(state, value, count)
        return state

    def state_create(self) -> _SumState:
        return (0.0, True)

    def process(self, state: _SumState, value: Any, count: int = 1) -> _SumState:
        total, all_int = state
        if value == INF:
            return (INF, False)
        return (total + value * count, all_int and isinstance(value, int))

    def merge(self, state: _SumState, other: _SumState) -> _SumState:
        return (state[0] + other[0], state[1] and other[1])

    def convert(self, state: _SumState) -> Any:
        total, all_int = state
        if math.isinf(total):
            return INF
        # Keep integer totals integral so interpretations print cleanly.
        if all_int and total == int(total):
            return int(total)
        return total


class HalfSum(Sum):
    """``halfsum`` — half the sum, monotonic on ``(R*, ≤)`` (Example 5.1)."""

    name = "halfsum"

    def convert(self, state: _SumState) -> Any:
        total = Sum.convert(self, state)
        return INF if total == INF else total / 2


class Count(AggregateFunction):
    """``count`` — Figure 1 row 8: ``M(B) → (N ∪ {∞}, ≤)``.

    Counts elements regardless of their value, so it is monotonic over any
    domain lattice; the Figure 1 row fixes ``D = (B, ≤)``.  The partial
    state is the running count; ``merge`` is ``+``.
    """

    name = "count"
    classification = Monotonicity.MONOTONIC

    def __init__(self, domain: Lattice | None = None) -> None:
        super().__init__(domain or BOOL_LE, NATURALS_LE)

    def state_create(self) -> int:
        return 0

    def process(self, state: int, value: Any, count: int = 1) -> int:
        return state + count

    def merge(self, state: int, other: int) -> int:
        return state + other

    def convert(self, state: int) -> int:
        return state


class Product(AggregateFunction):
    """``product`` on ``(N⁺ ∪ {∞}, ≤)`` — Figure 1 row 7.  ``product(∅) = 1``.

    Positivity (≥ 1) is what keeps multiplication monotone — and the
    running-product state mergeable (``merge`` is ``*``, identity 1).
    """

    name = "product"
    classification = Monotonicity.MONOTONIC

    def __init__(self) -> None:
        super().__init__(POS_INTS_LE, POS_INTS_LE)

    def state_create(self) -> Any:
        return 1

    def process(self, state: Any, value: Any, count: int = 1) -> Any:
        if value == INF or state == INF:
            return INF
        return state * value**count

    def merge(self, state: Any, other: Any) -> Any:
        if state == INF or other == INF:
            return INF
        return state * other

    def convert(self, state: Any) -> Any:
        return state


class _BooleanMixin(AggregateFunction):
    """Shared ``None``-or-bit state for the four AND/OR variants."""

    #: The binary boolean combiner (``min`` = and, ``max`` = or on bits).
    _combine: Callable[..., int]

    def state_create(self) -> Optional[int]:
        return None

    def process(
        self, state: Optional[int], value: Any, count: int = 1
    ) -> Optional[int]:
        bit = 1 if int(value) == 1 else 0
        return bit if state is None else type(self)._combine(state, bit)

    def merge(self, state: Optional[int], other: Optional[int]) -> Optional[int]:
        if state is None:
            return other
        if other is None:
            return state
        return type(self)._combine(state, other)

    def convert(self, state: Optional[int]) -> int:
        if state is None:
            raise EmptyAggregateError(f"{self.name}: empty partial state")
        return state


class LogicalAnd(_BooleanMixin):
    """``AND`` on ``(B, ≥)`` — Figure 1 row 5: monotonic.  ``AND(∅) = 1``."""

    name = "and"
    classification = Monotonicity.MONOTONIC
    _combine = min

    def __init__(self) -> None:
        super().__init__(BOOL_GE, BOOL_GE)


class LogicalAndAscending(LogicalAnd):
    """``AND`` against ``(B, ≤)``: pseudo-monotonic (§4.1.1, Example 4.4).

    ``AND({1}) = 1`` but ``AND({0, 1}) = 0`` — so adding elements can shrink
    the result; with a *fixed* multiset size (default-value predicates) it
    is monotone.  ``AND(∅) = 1``, the usual empty-conjunction convention —
    note this is ⊤ of ``(B, ≤)``, not ⊥, which is precisely why ``AND``
    cannot be used monotonically with the ``=`` form over growing groups.
    """

    name = "and_le"
    classification = Monotonicity.PSEUDO_MONOTONIC

    def __init__(self) -> None:
        AggregateFunction.__init__(self, BOOL_LE, BOOL_LE)

    def empty_value(self) -> Any:
        return 1


class LogicalOr(_BooleanMixin):
    """``OR`` on ``(B, ≤)`` — Figure 1 row 6: monotonic.  ``OR(∅) = 0``."""

    name = "or"
    classification = Monotonicity.MONOTONIC
    _combine = max

    def __init__(self) -> None:
        super().__init__(BOOL_LE, BOOL_LE)


class LogicalOrDescending(LogicalOr):
    """``OR`` against ``(B, ≥)``: pseudo-monotonic (the §4.1.1 dual of
    ``and_le``).  Used for *maximal* circuit behaviour, where the lattice
    bottom — and hence the default wire value — is 1 (Example 4.4's
    closing remark); sound over default-value predicates exactly like
    ``and_le`` is in the minimal orientation.  ``OR(∅) = 0`` (the empty
    disjunction), which is ⊤ of ``(B, ≥)`` — the same asymmetry that
    makes it only pseudo-monotonic."""

    name = "or_ge"
    classification = Monotonicity.PSEUDO_MONOTONIC

    def __init__(self) -> None:
        AggregateFunction.__init__(self, BOOL_GE, BOOL_GE)

    def empty_value(self) -> Any:
        return 0


class Union(AggregateFunction):
    """``union`` on ``(2^S, ⊆)`` — Figure 1 row 9.  ``union(∅) = ∅``.

    The partial state is the union so far; ``merge`` is ``|`` with the
    empty set as identity — set union is the textbook mergeable state.
    """

    name = "union"
    classification = Monotonicity.MONOTONIC

    def __init__(self, universe: Iterable[Any]) -> None:
        lattice = PowersetUnion(universe)
        super().__init__(lattice, lattice)

    def state_create(self) -> FrozenSet[Any]:
        return frozenset()

    def process(self, state: FrozenSet[Any], value: Any, count: int = 1) -> FrozenSet[Any]:
        return state | frozenset(value)

    def merge(self, state: FrozenSet[Any], other: FrozenSet[Any]) -> FrozenSet[Any]:
        return state | other

    def convert(self, state: FrozenSet[Any]) -> FrozenSet[Any]:
        return state


class Intersection(AggregateFunction):
    """``intersection`` on ``(2^S, ⊇)`` — Figure 1 row 10.

    ``intersection(∅) = S`` (the empty intersection is the whole universe —
    which is ⊥ of the ⊇-ordered lattice, so the bottom-default applies).
    The partial state is ``None`` (nothing seen — the neutral "whole
    universe" without materializing it) or the intersection so far.
    """

    name = "intersection"
    classification = Monotonicity.MONOTONIC

    def __init__(self, universe: Iterable[Any]) -> None:
        lattice = PowersetIntersection(universe)
        super().__init__(lattice, lattice)

    def state_create(self) -> Optional[frozenset]:
        return None

    def process(
        self, state: Optional[FrozenSet[Any]], value: Any, count: int = 1
    ) -> FrozenSet[Any]:
        s = frozenset(value)
        return s if state is None else state & s

    def merge(
        self, state: Optional[FrozenSet[Any]], other: Optional[frozenset]
    ) -> Optional[frozenset]:
        if state is None:
            return other
        if other is None:
            return state
        return state & other

    def convert(self, state: Optional[FrozenSet[Any]]) -> FrozenSet[Any]:
        if state is None:
            raise EmptyAggregateError(f"{self.name}: empty partial state")
        return state


class GraphProperty(AggregateFunction):
    """A monotone multigraph property ``P`` — Figure 1 row 11.

    The aggregated multiset *is* the multigraph: each multiset element is an
    edge (or edge set), and ``P`` maps the whole multigraph to a boolean.
    ``predicate`` receives the multigraph as a frozenset of edges joined
    across the multiset and must be monotone increasing (more edges never
    turn the property off) for the declared classification to hold.

    The partial state is the edge set accumulated so far; only
    :meth:`convert` applies ``P``, so partial states merge by plain set
    union.
    """

    name = "graph_property"
    classification = Monotonicity.MONOTONIC

    def __init__(
        self,
        predicate: Callable[[FrozenSet[Any]], bool],
        edge_universe: Iterable[Any],
        name: str | None = None,
    ) -> None:
        super().__init__(PowersetUnion(edge_universe), BOOL_LE)
        self.predicate = predicate
        if name:
            self.name = name

    def _as_edges(self, value: Any) -> FrozenSet[Any]:
        if isinstance(value, (set, frozenset)):
            return frozenset(value)
        return frozenset([value])

    def state_create(self) -> FrozenSet[Any]:
        return frozenset()

    def process(self, state: FrozenSet[Any], value: Any, count: int = 1) -> FrozenSet[Any]:
        return state | self._as_edges(value)

    def merge(self, state: FrozenSet[Any], other: FrozenSet[Any]) -> FrozenSet[Any]:
        return state | other

    def convert(self, state: FrozenSet[Any]) -> int:
        return 1 if self.predicate(state) else 0

    def empty_value(self) -> Any:
        return 1 if self.predicate(frozenset()) else 0


#: Partial average state: (running total, element count).
_AvgState = Tuple[float, int]


class Average(AggregateFunction):
    """``average`` (Example 2.1): pseudo-monotonic on ``(R, ≤)``, no ∅ value.

    The paper only ever uses ``average`` with the ``=r`` form (SQL does not
    aggregate empty groups), matching ``has_empty_value = False``.

    ``average`` itself is famously non-mergeable, but its *state*
    ``(sum, count)`` is — the textbook motivation for the two-phase
    interface.

    Like :class:`Sum`, ``fold`` iterates in sorted value order so the
    float total is independent of derivation order.
    """

    name = "average"
    classification = Monotonicity.PSEUDO_MONOTONIC
    has_empty_value = False

    def __init__(self) -> None:
        super().__init__(REALS_LE, REALS_LE)

    def fold(self, multiset: FrozenMultiset) -> _AvgState:
        state = self.state_create()
        for value, count in sorted(multiset.items()):
            state = self.process(state, value, count)
        return state

    def state_create(self) -> _AvgState:
        return (0.0, 0)

    def process(self, state: _AvgState, value: Any, count: int = 1) -> _AvgState:
        return (state[0] + value * count, state[1] + count)

    def merge(self, state: _AvgState, other: _AvgState) -> _AvgState:
        return (state[0] + other[0], state[1] + other[1])

    def convert(self, state: _AvgState) -> float:
        total, n = state
        if n == 0:
            raise EmptyAggregateError(f"{self.name}: empty partial state")
        return total / n


def default_registry() -> Dict[str, AggregateFunction]:
    """Name → fresh instance for every non-parametric aggregate.

    Used by the parser to resolve aggregate names in rule text; parametric
    aggregates (union/intersection/graph properties need a universe) must
    be registered explicitly on the :class:`~repro.core.database.Database`.
    """
    functions = [
        Minimum(),
        MinimumAscending(),
        Maximum(),
        MaximumNonNegative(),
        MaximumDescending(),
        Sum(),
        HalfSum(),
        Count(),
        Product(),
        LogicalAnd(),
        LogicalAndAscending(),
        LogicalOr(),
        LogicalOrDescending(),
        Average(),
    ]
    return {f.name: f for f in functions}


# ``FrozenMultiset`` is re-exported for callers that built multisets via
# this module historically; keep the import live for them.
__all__ = [
    "FrozenMultiset",
    "Minimum",
    "MinimumAscending",
    "Maximum",
    "MaximumNonNegative",
    "MaximumDescending",
    "Sum",
    "HalfSum",
    "Count",
    "Product",
    "LogicalAnd",
    "LogicalAndAscending",
    "LogicalOr",
    "LogicalOrDescending",
    "Union",
    "Intersection",
    "GraphProperty",
    "Average",
    "default_registry",
]
