"""The aggregate functions of Figure 1, plus the paper's extras.

Each class fixes the lattices of its Figure 1 row by default; the two
boolean aggregates and the two extrema come in *both* orientations because
the paper uses both (``AND`` is monotonic on ``(B, ≥)`` — row 5 — but only
pseudo-monotonic on ``(B, ≤)``, which is the orientation the circuit
program of Example 4.4 needs; dually for ``min``/``max``, §4.1.1).

``average`` (Example 2.1) and ``halfsum`` (Example 5.1) round out the set:
``average`` is pseudo-monotonic with no empty value, ``halfsum`` is fully
monotonic and drives the beyond-ω iteration example.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable

from repro.aggregates.base import AggregateFunction, Monotonicity
from repro.lattices import (
    BOOL_GE,
    BOOL_LE,
    INF,
    NATURALS_LE,
    NONNEG_REALS_LE,
    POS_INTS_LE,
    REALS_GE,
    REALS_LE,
)
from repro.lattices.base import Lattice
from repro.lattices.sets import PowersetIntersection, PowersetUnion
from repro.util.multiset import FrozenMultiset


class Minimum(AggregateFunction):
    """``min`` on ``(R ∪ {±∞}, ≥)`` — Figure 1 row 3.  ``min(∅) = +∞``.

    Under the ≥ order, growing the multiset can only *lower* the numeric
    minimum, which is a ⊑-increase — hence monotonic.
    """

    name = "min"
    classification = Monotonicity.MONOTONIC

    def __init__(self, domain: Lattice | None = None) -> None:
        lattice = domain or REALS_GE
        super().__init__(lattice, lattice)

    def apply_nonempty(self, multiset: FrozenMultiset) -> Any:
        return min(multiset.support())


class MinimumAscending(Minimum):
    """``min`` viewed against the ≤ order: pseudo-monotonic only (§4.1.1)."""

    name = "min_le"
    classification = Monotonicity.PSEUDO_MONOTONIC

    def __init__(self) -> None:
        AggregateFunction.__init__(self, REALS_LE, REALS_LE)

    def empty_value(self) -> Any:
        # min over (R, ≤) has no sensible ∅ value below every element
        # except -∞ = ⊥, which the default provides.
        return self.range_.bottom


class Maximum(AggregateFunction):
    """``max`` on ``(R ∪ {±∞}, ≤)`` — Figure 1 row 1.  ``max(∅) = -∞``."""

    name = "max"
    classification = Monotonicity.MONOTONIC

    def __init__(self, domain: Lattice | None = None) -> None:
        lattice = domain or REALS_LE
        super().__init__(lattice, lattice)

    def apply_nonempty(self, multiset: FrozenMultiset) -> Any:
        return max(multiset.support())


class MaximumNonNegative(Maximum):
    """``max`` on ``(R* ∪ {∞}, ≤)`` — Figure 1 row 2.  ``max(∅) = 0``."""

    name = "max_nonneg"

    def __init__(self) -> None:
        AggregateFunction.__init__(self, NONNEG_REALS_LE, NONNEG_REALS_LE)


class MaximumDescending(Maximum):
    """``max`` viewed against the ≥ order: pseudo-monotonic only (§4.1.1)."""

    name = "max_ge"
    classification = Monotonicity.PSEUDO_MONOTONIC

    def __init__(self) -> None:
        AggregateFunction.__init__(self, REALS_GE, REALS_GE)


class Sum(AggregateFunction):
    """``sum`` on ``(R* ∪ {∞}, ≤)`` — Figure 1 row 4.  ``sum(∅) = 0``.

    Only non-negative values keep ``sum`` monotonic: adding an element can
    then only increase the total.
    """

    name = "sum"
    classification = Monotonicity.MONOTONIC

    def __init__(self, domain: Lattice | None = None) -> None:
        lattice = domain or NONNEG_REALS_LE
        super().__init__(lattice, lattice)

    def apply_nonempty(self, multiset: FrozenMultiset) -> Any:
        total = 0.0
        for value, count in multiset.items():
            if value == INF:
                return INF
            total += value * count
        # Keep integer totals integral so interpretations print cleanly.
        if total == int(total) and not math.isinf(total):
            as_int = int(total)
            if all(isinstance(v, int) for v in multiset.support()):
                return as_int
        return total


class HalfSum(Sum):
    """``halfsum`` — half the sum, monotonic on ``(R*, ≤)`` (Example 5.1)."""

    name = "halfsum"

    def apply_nonempty(self, multiset: FrozenMultiset) -> Any:
        total = Sum.apply_nonempty(self, multiset)
        return INF if total == INF else total / 2


class Count(AggregateFunction):
    """``count`` — Figure 1 row 8: ``M(B) → (N ∪ {∞}, ≤)``.

    Counts elements regardless of their value, so it is monotonic over any
    domain lattice; the Figure 1 row fixes ``D = (B, ≤)``.
    """

    name = "count"
    classification = Monotonicity.MONOTONIC

    def __init__(self, domain: Lattice | None = None) -> None:
        super().__init__(domain or BOOL_LE, NATURALS_LE)

    def apply_nonempty(self, multiset: FrozenMultiset) -> Any:
        return len(multiset)


class Product(AggregateFunction):
    """``product`` on ``(N⁺ ∪ {∞}, ≤)`` — Figure 1 row 7.  ``product(∅) = 1``.

    Positivity (≥ 1) is what keeps multiplication monotone.
    """

    name = "product"
    classification = Monotonicity.MONOTONIC

    def __init__(self) -> None:
        super().__init__(POS_INTS_LE, POS_INTS_LE)

    def apply_nonempty(self, multiset: FrozenMultiset) -> Any:
        total: Any = 1
        for value, count in multiset.items():
            if value == INF:
                return INF
            total *= value**count
        return total


class LogicalAnd(AggregateFunction):
    """``AND`` on ``(B, ≥)`` — Figure 1 row 5: monotonic.  ``AND(∅) = 1``."""

    name = "and"
    classification = Monotonicity.MONOTONIC

    def __init__(self) -> None:
        super().__init__(BOOL_GE, BOOL_GE)

    def apply_nonempty(self, multiset: FrozenMultiset) -> Any:
        return 1 if all(int(v) == 1 for v in multiset.support()) else 0


class LogicalAndAscending(LogicalAnd):
    """``AND`` against ``(B, ≤)``: pseudo-monotonic (§4.1.1, Example 4.4).

    ``AND({1}) = 1`` but ``AND({0, 1}) = 0`` — so adding elements can shrink
    the result; with a *fixed* multiset size (default-value predicates) it
    is monotone.  ``AND(∅) = 1``, the usual empty-conjunction convention —
    note this is ⊤ of ``(B, ≤)``, not ⊥, which is precisely why ``AND``
    cannot be used monotonically with the ``=`` form over growing groups.
    """

    name = "and_le"
    classification = Monotonicity.PSEUDO_MONOTONIC

    def __init__(self) -> None:
        AggregateFunction.__init__(self, BOOL_LE, BOOL_LE)

    def empty_value(self) -> Any:
        return 1


class LogicalOr(AggregateFunction):
    """``OR`` on ``(B, ≤)`` — Figure 1 row 6: monotonic.  ``OR(∅) = 0``."""

    name = "or"
    classification = Monotonicity.MONOTONIC

    def __init__(self) -> None:
        super().__init__(BOOL_LE, BOOL_LE)

    def apply_nonempty(self, multiset: FrozenMultiset) -> Any:
        return 1 if any(int(v) == 1 for v in multiset.support()) else 0


class LogicalOrDescending(LogicalOr):
    """``OR`` against ``(B, ≥)``: pseudo-monotonic (the §4.1.1 dual of
    ``and_le``).  Used for *maximal* circuit behaviour, where the lattice
    bottom — and hence the default wire value — is 1 (Example 4.4's
    closing remark); sound over default-value predicates exactly like
    ``and_le`` is in the minimal orientation.  ``OR(∅) = 0`` (the empty
    disjunction), which is ⊤ of ``(B, ≥)`` — the same asymmetry that
    makes it only pseudo-monotonic."""

    name = "or_ge"
    classification = Monotonicity.PSEUDO_MONOTONIC

    def __init__(self) -> None:
        AggregateFunction.__init__(self, BOOL_GE, BOOL_GE)

    def empty_value(self) -> Any:
        return 0


class Union(AggregateFunction):
    """``union`` on ``(2^S, ⊆)`` — Figure 1 row 9.  ``union(∅) = ∅``."""

    name = "union"
    classification = Monotonicity.MONOTONIC

    def __init__(self, universe: Iterable[Any]) -> None:
        lattice = PowersetUnion(universe)
        super().__init__(lattice, lattice)

    def apply_nonempty(self, multiset: FrozenMultiset) -> Any:
        out: frozenset = frozenset()
        for s in multiset.support():
            out |= frozenset(s)
        return out


class Intersection(AggregateFunction):
    """``intersection`` on ``(2^S, ⊇)`` — Figure 1 row 10.

    ``intersection(∅) = S`` (the empty intersection is the whole universe —
    which is ⊥ of the ⊇-ordered lattice, so the bottom-default applies).
    """

    name = "intersection"
    classification = Monotonicity.MONOTONIC

    def __init__(self, universe: Iterable[Any]) -> None:
        lattice = PowersetIntersection(universe)
        super().__init__(lattice, lattice)

    def apply_nonempty(self, multiset: FrozenMultiset) -> Any:
        values = [frozenset(s) for s in multiset.support()]
        out = values[0]
        for s in values[1:]:
            out &= s
        return out


class GraphProperty(AggregateFunction):
    """A monotone multigraph property ``P`` — Figure 1 row 11.

    The aggregated multiset *is* the multigraph: each multiset element is an
    edge (or edge set), and ``P`` maps the whole multigraph to a boolean.
    ``predicate`` receives the multigraph as a frozenset of edges joined
    across the multiset and must be monotone increasing (more edges never
    turn the property off) for the declared classification to hold.
    """

    name = "graph_property"
    classification = Monotonicity.MONOTONIC

    def __init__(
        self,
        predicate: Callable[[frozenset], bool],
        edge_universe: Iterable[Any],
        name: str | None = None,
    ) -> None:
        super().__init__(PowersetUnion(edge_universe), BOOL_LE)
        self.predicate = predicate
        if name:
            self.name = name

    def _as_edges(self, value: Any) -> frozenset:
        if isinstance(value, (set, frozenset)):
            return frozenset(value)
        return frozenset([value])

    def apply_nonempty(self, multiset: FrozenMultiset) -> Any:
        graph: frozenset = frozenset()
        for value in multiset.support():
            graph |= self._as_edges(value)
        return 1 if self.predicate(graph) else 0

    def empty_value(self) -> Any:
        return 1 if self.predicate(frozenset()) else 0


class Average(AggregateFunction):
    """``average`` (Example 2.1): pseudo-monotonic on ``(R, ≤)``, no ∅ value.

    The paper only ever uses ``average`` with the ``=r`` form (SQL does not
    aggregate empty groups), matching ``has_empty_value = False``.
    """

    name = "average"
    classification = Monotonicity.PSEUDO_MONOTONIC
    has_empty_value = False

    def __init__(self) -> None:
        super().__init__(REALS_LE, REALS_LE)

    def apply_nonempty(self, multiset: FrozenMultiset) -> Any:
        total = sum(value * count for value, count in multiset.items())
        return total / len(multiset)


def default_registry() -> dict:
    """Name → fresh instance for every non-parametric aggregate.

    Used by the parser to resolve aggregate names in rule text; parametric
    aggregates (union/intersection/graph properties need a universe) must
    be registered explicitly on the :class:`~repro.core.database.Database`.
    """
    functions = [
        Minimum(),
        MinimumAscending(),
        Maximum(),
        MaximumNonNegative(),
        MaximumDescending(),
        Sum(),
        HalfSum(),
        Count(),
        Product(),
        LogicalAnd(),
        LogicalAndAscending(),
        LogicalOr(),
        LogicalOrDescending(),
        Average(),
    ]
    return {f.name: f for f in functions}
