"""Synthetic weighted digraphs + independent shortest-path oracles.

The generators are deterministic in their seed.  The oracles (Dijkstra,
Bellman–Ford) are written directly against the arc list — they share no
code with the engine, so benchmark comparisons are meaningful.
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, List, Optional, Tuple

Arc = Tuple[int, int, float]


def random_digraph(
    n: int,
    *,
    arcs_per_node: float = 3.0,
    seed: int = 0,
    max_weight: float = 10.0,
    negative_fraction: float = 0.0,
    integer_weights: bool = True,
) -> List[Arc]:
    """A random weighted digraph on nodes ``0..n-1`` (cycles very likely).

    ``negative_fraction`` of the arcs get negative weights (only safe with
    DAGs unless you enjoy negative cycles — see :func:`random_dag`).
    """
    rng = random.Random(seed)
    m = int(n * arcs_per_node)
    seen = set()
    arcs: List[Arc] = []
    while len(arcs) < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v or (u, v) in seen:
            continue
        seen.add((u, v))
        w = rng.uniform(0, max_weight)
        if integer_weights:
            w = float(int(w)) + 1.0
        if rng.random() < negative_fraction:
            w = -w
        arcs.append((u, v, w))
    return arcs


def random_dag(
    n: int,
    *,
    arcs_per_node: float = 3.0,
    seed: int = 0,
    max_weight: float = 10.0,
    negative_fraction: float = 0.0,
    integer_weights: bool = True,
) -> List[Arc]:
    """A random weighted DAG (arcs go from lower to higher node ids)."""
    rng = random.Random(seed)
    m = int(n * arcs_per_node)
    seen = set()
    arcs: List[Arc] = []
    attempts = 0
    while len(arcs) < m and attempts < 50 * m:
        attempts += 1
        u = rng.randrange(n - 1)
        v = rng.randrange(u + 1, n)
        if (u, v) in seen:
            continue
        seen.add((u, v))
        w = rng.uniform(0, max_weight)
        if integer_weights:
            w = float(int(w)) + 1.0
        if rng.random() < negative_fraction:
            w = -w
        arcs.append((u, v, w))
    return arcs


def layered_digraph(
    width: int,
    *,
    layers: int = 6,
    seed: int = 0,
    max_weight: float = 10.0,
    integer_weights: bool = True,
) -> List[Arc]:
    """A dense layered digraph: ``layers`` layers of ``width`` nodes each,
    with the complete bipartite arc set between consecutive layers.

    Node ids are ``layer * width + offset``.  Every source-to-sink pair
    has ``width ** (gap - 1)`` distinct paths, so the ``path(X, Z, Y, C)``
    frontier of the shortest-path idiom explodes combinatorially while
    the collapsed per-pair frontier stays quadratic — the worst case the
    aggregate pushdown (docs/OPTIMIZATION.md) is built for.
    """
    rng = random.Random(seed)
    arcs: List[Arc] = []
    for layer in range(layers - 1):
        for i in range(width):
            for j in range(width):
                w = rng.uniform(0, max_weight)
                if integer_weights:
                    w = float(int(w)) + 1.0
                arcs.append((layer * width + i, (layer + 1) * width + j, w))
    return arcs


def revision_chain(m: int, *, width: int = 18) -> List[Arc]:
    """A revision-cascade graph: the adversarial workload for the
    aggregate pushdown (docs/OPTIMIZATION.md).

    Three deterministic arc groups on nodes ``0..m+width``:

    * a unit-weight chain ``a_0 -> a_1 -> ... -> a_m`` (nodes ``0..m``);
    * "decoy" shortcuts ``a_0 -> a_i`` of weight ``10*i - 9``, so the
      first distance derived for ``(a_0, a_i)`` is the shortcut and the
      chain path (cost ``i``) *undercuts it at round i* — the solve is a
      long cascade of ~m revision waves, each touching few pairs;
    * a unit-weight blanket ``a_i -> b_k`` from every chain node to
      ``width`` sink nodes (``m+1 .. m+width``).

    Every revision wave re-derives paths into the blanket.  Without the
    pushdown each wave forces the grouped ``min`` aggregate to re-scan
    entire ``(source, sink)`` path groups (width ~m/2 conjuncts each);
    with the pushdown the wave is absorbed into the collapsed
    ``path__frontier`` relation in O(1) per pair.  The gap grows with
    ``m``, reaching ~6x at ``m = 260``.
    """
    arcs: List[Arc] = [(i, i + 1, 1.0) for i in range(m)]
    arcs += [(0, i, float(10 * i - 9)) for i in range(2, m + 1)]
    arcs += [
        (i, m + 1 + k, 1.0) for i in range(m + 1) for k in range(width)
    ]
    return arcs


def straggler_graph(
    hubs: int,
    *,
    depth: Optional[int] = None,
    fan: int = 12,
    seed: int = 0,
) -> List[Arc]:
    """A convergence-skewed graph: the showcase for ``plan="sharded"``
    (docs/PARALLELISM.md).

    Two disconnected arc groups:

    * one deep unit-weight chain ``a_0 -> ... -> a_depth`` (the
      *straggler*: its sources need up to ``depth`` fixpoint rounds);
    * ``hubs`` shallow stars ``h_j -> l_{j,k}`` (``fan`` leaves each,
      random weights): the bulk of the model, converging in one round.

    Under sequential naive evaluation every round re-applies ``T_P`` to
    the *whole* interpretation, so the long-converging chain drags the
    huge already-stable star blob through ~``depth`` rounds.  Sharded
    evaluation partitions by source vertex: star-only shards converge
    immediately and stop, and only the chain's shards keep iterating —
    total work drops from ``depth x (blob + chain)`` to roughly
    ``blob + depth x chain`` even on a single core.

    ``depth`` defaults to ``max(8, hubs // 10)`` so quick benchmark
    sizes stay shallow.  Node ids: chain ``0..depth``, hub ``j`` is
    ``depth + 1 + j * (fan + 1)``, its leaves follow it.
    """
    if depth is None:
        depth = max(8, hubs // 10)
    rng = random.Random(seed)
    arcs: List[Arc] = [(i, i + 1, 1.0) for i in range(depth)]
    base = depth + 1
    for j in range(hubs):
        hub = base + j * (fan + 1)
        for k in range(fan):
            arcs.append((hub, hub + 1 + k, float(rng.randrange(1, 10))))
    return arcs


def cycle_graph(n: int, *, weight: float = 1.0) -> List[Arc]:
    """A single directed n-cycle — the minimal stress test for semantics
    that go three-valued on cyclic data."""
    return [(i, (i + 1) % n, weight) for i in range(n)]


# ---------------------------------------------------------------------------
# Oracles
# ---------------------------------------------------------------------------


def dijkstra_all_pairs(arcs: List[Arc]) -> Dict[Tuple[int, int], float]:
    """All-pairs shortest distances via per-source Dijkstra.

    Requires non-negative weights.  Distances exclude the trivial empty
    path, matching the paper's ``s`` relation: ``s(x, x, c)`` is the
    shortest *non-empty* cycle through x, not 0.
    """
    adjacency: Dict[int, List[Tuple[int, float]]] = {}
    nodes = set()
    for u, v, w in arcs:
        if w < 0:
            raise ValueError("Dijkstra requires non-negative weights")
        adjacency.setdefault(u, []).append((v, w))
        nodes.add(u)
        nodes.add(v)

    out: Dict[Tuple[int, int], float] = {}
    for source in nodes:
        # Seed with the outgoing arcs so the empty path does not count.
        dist: Dict[int, float] = {}
        heap: List[Tuple[float, int]] = []
        for v, w in adjacency.get(source, []):
            if w < dist.get(v, float("inf")):
                dist[v] = w
                heapq.heappush(heap, (w, v))
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist.get(u, float("inf")):
                continue
            for v, w in adjacency.get(u, []):
                nd = d + w
                if nd < dist.get(v, float("inf")):
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        for target, d in dist.items():
            out[(source, target)] = d
    return out


def bellman_ford_all_pairs(arcs: List[Arc]) -> Dict[Tuple[int, int], float]:
    """All-pairs shortest distances allowing negative weights (no negative
    cycles — guaranteed when the input is a DAG).  Same non-empty-path
    convention as :func:`dijkstra_all_pairs`."""
    nodes = sorted({u for u, _, _ in arcs} | {v for _, v, _ in arcs})
    out: Dict[Tuple[int, int], float] = {}
    for source in nodes:
        dist: Dict[int, float] = {}
        for _ in range(len(nodes)):
            changed = False
            for u, v, w in arcs:
                base: Optional[float]
                if u == source:
                    base = 0.0
                else:
                    base = dist.get(u)
                if base is None:
                    continue
                nd = base + w
                if nd < dist.get(v, float("inf")):
                    dist[v] = nd
                    changed = True
            if not changed:
                break
        for target, d in dist.items():
            out[(source, target)] = d
    return out
