"""Dataset-backed workloads: road networks and ownership graphs on disk.

The bulk data plane (:mod:`repro.data.loader`, docs/STORAGE.md) exists
for workloads whose facts arrive as *files*, not Python literals.  The
generators here produce such files deterministically in their seed:

* :func:`road_network` — a grid road network (every node a junction,
  4-neighbour street segments with random positive lengths, plus a few
  long "highway" shortcuts), the classic substrate for shortest-path
  queries.  :func:`write_road_network_csv` streams it as an edge-list
  CSV — ``u,v,length`` per line, the shape road datasets ship in.
* :func:`write_ownership_jsonl` — a :func:`~repro.workloads.ownership.
  random_ownership` share distribution as JSONL fact lines for the
  company-control program (Example 2.7).

``repro bench`` loads these files through :meth:`Database.load_csv` /
:meth:`load_jsonl` in its ``road_network`` / ``company_control_dataset``
workloads, so the loader's throughput and the storage backends' memory
behaviour are measured on realistically-shaped data.
"""

from __future__ import annotations

import json
import math
import random
from typing import List, Tuple

from repro.workloads.ownership import random_ownership

Arc = Tuple[int, int, float]

#: Rule text for k-source shortest paths over a road network — the
#: paper's Example 2.6 idiom with the seed rule filtered through a
#: ``source/1`` query relation, so the solve cost scales with the number
#: of query sources instead of all pairs.
ROAD_NETWORK_PROGRAM = """
    @pred source/1.
    @cost arc/3  : reals_ge.
    @cost step/4 : reals_ge.
    @cost d/3    : reals_ge.
    @constraint arc(direct, Z, C).
    step(X, direct, Y, C) <- source(X), arc(X, Y, C).
    step(X, Z, Y, C) <- d(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
    d(X, Y, C) <- C =r min{D : step(X, Z, Y, D)}.
"""


def road_network(
    n: int, *, seed: int = 0, highway_fraction: float = 0.02
) -> List[Arc]:
    """A grid road network with ~``n`` junctions.

    Junctions form a ``side x side`` grid (``side = ceil(sqrt(n))``,
    ids ``row * side + col``); each adjacent pair is connected in both
    directions with independent random lengths in ``[1, 10)``, and
    ``highway_fraction`` of the junction count becomes long random
    shortcuts (weight in ``[5, 50)``) so shortest paths are not purely
    local.  Deterministic in ``seed``.
    """
    side = max(2, math.ceil(math.sqrt(n)))
    rng = random.Random(seed)
    arcs: List[Arc] = []

    def length() -> float:
        return round(rng.uniform(1.0, 10.0), 1)

    for row in range(side):
        for col in range(side):
            node = row * side + col
            if col + 1 < side:
                arcs.append((node, node + 1, length()))
                arcs.append((node + 1, node, length()))
            if row + 1 < side:
                arcs.append((node, node + side, length()))
                arcs.append((node + side, node, length()))
    total = side * side
    for _ in range(int(total * highway_fraction)):
        u = rng.randrange(total)
        v = rng.randrange(total)
        if u != v:
            arcs.append((u, v, round(rng.uniform(5.0, 50.0), 1)))
    return arcs


def write_road_network_csv(path: str, n: int, *, seed: int = 0) -> int:
    """Write :func:`road_network` as an ``u,v,length`` edge-list CSV.

    Returns the arc count.  The file loads with
    ``Database.load_csv("arc", path)`` (docs/STORAGE.md).
    """
    arcs = road_network(n, seed=seed)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        for u, v, w in arcs:
            handle.write(f"{u},{v},{w}\n")
    return len(arcs)


def write_ownership_jsonl(path: str, n: int, *, seed: int = 0) -> int:
    """Write a :func:`random_ownership` share distribution as JSONL.

    One ``{"predicate": "s", "row": [owner, company, fraction]}`` line
    per share; loads with ``Database.load_jsonl(path)`` after the
    company-control program declared ``s``.  Returns the line count.
    """
    shares = random_ownership(n, seed=seed, chain_length=min(6, n - 1))
    with open(path, "w", encoding="utf-8") as handle:
        for owner, company, fraction in shares:
            handle.write(
                json.dumps(
                    {"predicate": "s", "row": [owner, company, fraction]},
                    separators=(",", ":"),
                )
                + "\n"
            )
    return len(shares)
