"""Random boolean circuits for the Example 4.4 experiments.

``random_circuit`` builds AND/OR circuits with arbitrary fan-in; an
optional fraction of feedback connections makes them cyclic (the paper's
interesting case).  ``circuit_oracle`` computes the minimal behaviour by
the obvious gate-level iteration from the all-zero state — a monotone
map (AND/OR circuits are monotone in their wire vector), so the iteration
converges to the least fixpoint the paper's semantics prescribes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class CircuitInstance:
    """One generated circuit: named wires, gates, connections, inputs."""

    gates: List[Tuple[str, str]] = field(default_factory=list)  # (gate, kind)
    connects: List[Tuple[str, str]] = field(default_factory=list)  # (gate, wire)
    inputs: List[Tuple[str, int]] = field(default_factory=list)  # (wire, 0/1)


def random_circuit(
    n_gates: int,
    *,
    n_inputs: int = 8,
    fan_in: int = 3,
    feedback_fraction: float = 0.0,
    seed: int = 0,
) -> CircuitInstance:
    """A random AND/OR circuit.

    Gates are wired to earlier wires (inputs or earlier gates), keeping
    the base circuit acyclic; ``feedback_fraction`` of the gates also get
    one connection to a *later* gate, creating cycles.
    """
    rng = random.Random(seed)
    circuit = CircuitInstance()
    wires: List[str] = []
    for i in range(n_inputs):
        wire = f"w{i}"
        circuit.inputs.append((wire, rng.randint(0, 1)))
        wires.append(wire)
    gate_names = [f"g{i}" for i in range(n_gates)]
    for idx, gate in enumerate(gate_names):
        kind = rng.choice(["and", "or"])
        circuit.gates.append((gate, kind))
        k = rng.randint(1, fan_in)
        sources = rng.sample(wires, k=min(k, len(wires)))
        for source in sources:
            circuit.connects.append((gate, source))
        if rng.random() < feedback_fraction and idx + 1 < n_gates:
            later = gate_names[rng.randrange(idx + 1, n_gates)]
            circuit.connects.append((gate, later))
        wires.append(gate)
    # Deduplicate connections (repeated inputs serve no purpose, §4.4).
    circuit.connects = sorted(set(circuit.connects))
    return circuit


def circuit_oracle(circuit: CircuitInstance) -> Dict[str, int]:
    """Minimal (least-fixpoint) wire values of the circuit.

    Starts from the all-zero state (the default value of ``t``) and
    iterates the gate functions; AND/OR circuits are monotone in the wire
    vector, so this converges to the least fixpoint.
    """
    values: Dict[str, int] = {}
    for wire, value in circuit.inputs:
        values[wire] = value
    for gate, _ in circuit.gates:
        values.setdefault(gate, 0)

    fan_in: Dict[str, List[str]] = {}
    for gate, wire in circuit.connects:
        fan_in.setdefault(gate, []).append(wire)

    while True:
        changed = False
        for gate, kind in circuit.gates:
            source_values = [values.get(w, 0) for w in fan_in.get(gate, [])]
            if kind == "and":
                # all([]) is True: the empty conjunction is 1, matching the
                # engine's AND(∅) = 1 convention.
                new = 1 if all(source_values) else 0
            else:
                new = 1 if any(source_values) else 0
            if values[gate] != new:
                values[gate] = new
                changed = True
        if not changed:
            return values
