"""Deterministic synthetic workloads + engine-independent oracles."""

from repro.workloads.circuits import CircuitInstance, circuit_oracle, random_circuit
from repro.workloads.datasets import (
    ROAD_NETWORK_PROGRAM,
    road_network,
    write_ownership_jsonl,
    write_road_network_csv,
)
from repro.workloads.graphs import (
    bellman_ford_all_pairs,
    cycle_graph,
    dijkstra_all_pairs,
    layered_digraph,
    random_dag,
    random_digraph,
    revision_chain,
    straggler_graph,
)
from repro.workloads.ownership import company_control_oracle, random_ownership
from repro.workloads.social import party_oracle, random_party

__all__ = [
    "ROAD_NETWORK_PROGRAM",
    "road_network",
    "write_road_network_csv",
    "write_ownership_jsonl",
    "random_digraph",
    "random_dag",
    "layered_digraph",
    "revision_chain",
    "straggler_graph",
    "cycle_graph",
    "dijkstra_all_pairs",
    "bellman_ford_all_pairs",
    "random_ownership",
    "company_control_oracle",
    "random_party",
    "party_oracle",
    "CircuitInstance",
    "random_circuit",
    "circuit_oracle",
]
