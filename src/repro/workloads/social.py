"""Social graphs for the party-invitation experiments (Example 4.3).

``random_party`` draws a random ``knows`` relation (cyclic on purpose —
the paper's point is that cycles are the common case) and per-guest
thresholds; ``party_oracle`` runs the obvious monotone set iteration
directly.
"""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple


def random_party(
    n: int,
    *,
    friends_per_guest: float = 4.0,
    max_requirement: int = 3,
    zero_requirement_fraction: float = 0.15,
    seed: int = 0,
) -> Tuple[List[Tuple[int, int]], Dict[int, int]]:
    """(knows arcs, requirements) for guests ``0..n-1``.

    A slice of guests requires nobody (they seed the monotone cascade);
    the rest require 1..max_requirement acquaintances.
    """
    rng = random.Random(seed)
    knows: Set[Tuple[int, int]] = set()
    # Only n*(n-1) distinct ordered non-self pairs exist; without the cap
    # the sampling loop below never terminates for small n.
    m = min(int(n * friends_per_guest), n * (n - 1))
    while len(knows) < m:
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            knows.add((a, b))
    requires = {
        guest: (
            0
            if rng.random() < zero_requirement_fraction
            else rng.randint(1, max_requirement)
        )
        for guest in range(n)
    }
    return sorted(knows), requires


def party_oracle(
    knows: List[Tuple[int, int]], requires: Dict[int, int]
) -> Set[int]:
    """Who comes: least fixpoint of the threshold cascade."""
    known: Dict[int, Set[int]] = {}
    for a, b in knows:
        known.setdefault(a, set()).add(b)

    coming: Set[int] = set()
    while True:
        added = False
        for guest, k in requires.items():
            if guest in coming:
                continue
            if len(known.get(guest, set()) & coming) >= k:
                coming.add(guest)
                added = True
        if not added:
            return coming
