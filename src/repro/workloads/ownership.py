"""Ownership networks for the company-control experiments (Example 2.7).

``random_ownership`` distributes each company's shares over a few random
owners and plants a control chain so the recursive case actually fires.
``company_control_oracle`` computes the controls relation directly
(iterated set fixpoint in plain Python) — an engine-independent baseline.
"""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple

Share = Tuple[int, int, float]  # (owner, company, fraction)


def random_ownership(
    n: int,
    *,
    owners_per_company: int = 3,
    chain_length: int = 4,
    seed: int = 0,
) -> List[Share]:
    """Random share distribution over companies ``0..n-1``.

    Every company's incoming fractions sum to (at most) 1.  A control
    chain ``0 → 1 → ... → chain_length`` is planted by handing each link
    0.6 of the next company, so transitive control via the recursive rule
    is guaranteed to occur.
    """
    if n < 2:
        raise ValueError("need at least two companies")
    rng = random.Random(seed)
    shares: Dict[Tuple[int, int], float] = {}
    chain_length = min(chain_length, n - 1)
    for i in range(chain_length):
        shares[(i, i + 1)] = 0.6
    for company in range(n):
        remaining = 1.0 - sum(
            fraction for (_, c), fraction in shares.items() if c == company
        )
        owners = rng.sample(
            [o for o in range(n) if o != company], k=min(owners_per_company, n - 1)
        )
        for owner in owners:
            if remaining <= 0.01:
                break
            fraction = round(rng.uniform(0.01, remaining / 2), 3)
            key = (owner, company)
            if key in shares:
                continue
            shares[key] = fraction
            remaining -= fraction
    return [(o, c, f) for (o, c), f in sorted(shares.items())]


def company_control_oracle(shares: List[Share]) -> Set[Tuple[int, int]]:
    """Direct fixpoint of the company-control definition.

    ``controls(x, y)`` iff the shares of ``y`` held by ``x`` and by
    companies ``x`` controls sum to more than 0.5.  Iterates the monotone
    operator on the controls set until stable.
    """
    by_owner: Dict[int, List[Tuple[int, float]]] = {}
    companies: Set[int] = set()
    for owner, company, fraction in shares:
        by_owner.setdefault(owner, []).append((company, fraction))
        companies.add(owner)
        companies.add(company)

    controls: Set[Tuple[int, int]] = set()
    while True:
        added = False
        for x in companies:
            holders = [x] + [z for (cx, z) in controls if cx == x]
            totals: Dict[int, float] = {}
            counted: Set[Tuple[int, int]] = set()
            for holder in holders:
                for company, fraction in by_owner.get(holder, []):
                    if (holder, company) in counted:
                        continue
                    counted.add((holder, company))
                    totals[company] = totals.get(company, 0.0) + fraction
            for company, total in totals.items():
                if total > 0.5 and (x, company) not in controls:
                    controls.add((x, company))
                    added = True
        if not added:
            return controls
