"""Model and pre-model checking (Definitions 3.4–3.5, Proposition 3.2).

Given an interpretation, verify that every ground instance of every rule
is satisfied — either exactly (*model*: the head atom is in the
interpretation) or up to ⊑ (*pre-model*: some ⊒ head atom is).  The test
suite uses these to assert, independently of the fixpoint machinery, that

* the engine's output is a model (Proposition 3.4),
* it is a pre-model, and ``T_P(J, I) ⊑ J`` characterises pre-models
  (Proposition 3.2),
* hand-written models/pre-models from the paper check out (Example 3.1,
  the ``{p(a,3), q(a,2)}`` pre-model of Section 3).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.datalog.program import Program
from repro.engine.grounding import EvalContext, evaluate_body, ground_head
from repro.engine.interpretation import Interpretation


def _head_satisfaction(
    program: Program,
    model: Interpretation,
    predicate: str,
    args: Tuple,
    *,
    up_to_order: bool,
) -> bool:
    rel = model.relation(predicate)
    if rel.is_cost:
        stored = rel.cost_of(args[:-1])
        if stored is None:
            return False
        if up_to_order:
            # ⊑-domination up to floating-point noise: a derived cost may
            # differ from the stored one by an ulp when the two were
            # computed along different arithmetic routes (e.g. a uniformly
            # perturbed pre-model re-deriving ``(s - δ) + c`` against a
            # stored ``(s + c) - δ``); exact ``leq`` on a real chain would
            # misread that as a violation.
            lattice = rel.decl.lattice
            assert lattice is not None
            return lattice.leq(args[-1], stored) or lattice.close(
                args[-1], stored
            )
        return stored == args[-1]
    return args in rel.tuples


def violations(
    program: Program,
    model: Interpretation,
    *,
    up_to_order: bool,
) -> List[str]:
    """Rule instances whose body holds but whose head fails."""
    problems: List[str] = []
    ctx = EvalContext(program, frozenset(program.declarations), model, model)
    for rule in program.rules:
        for bindings in evaluate_body(rule, ctx):
            predicate, args = ground_head(rule, bindings)
            if not _head_satisfaction(
                program, model, predicate, args, up_to_order=up_to_order
            ):
                rendered = ", ".join(map(repr, args))
                problems.append(
                    f"rule {rule} derives {predicate}({rendered}) which the "
                    f"interpretation does not "
                    f"{'dominate' if up_to_order else 'contain'}"
                )
    return problems


def is_model(program: Program, model: Interpretation) -> bool:
    """Definition 3.5: every satisfied body has its exact head atom."""
    return not violations(program, model, up_to_order=False)


def is_premodel(program: Program, model: Interpretation) -> bool:
    """Definition 3.5: every satisfied body has a ⊒ head atom."""
    return not violations(program, model, up_to_order=True)
