"""Provenance: explain why an atom is in the minimal model.

At a fixpoint ``M = T_P(M, I)``, every derived atom is the head of some
rule instance whose body is satisfied *in the model itself* — so one more
evaluation pass over the final model recovers, per atom, the rule and the
ground bindings that (re-)derive it.  ``explain`` renders a derivation
tree by following those justifications recursively; cycles are cut by
marking atoms on the current path (a cyclic justification is legitimate
at a fixpoint — shortest paths through cycles justify each other — but a
finite *tree* requires stopping there).

This is one-step-at-a-time provenance over the *final* model, not a full
derivation history; for monotonic programs the final justification is a
genuine proof because every body atom it references is itself in the
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.engine.grounding import EvalContext, evaluate_body, ground_head
from repro.engine.interpretation import Interpretation, Key

GroundAtom = Tuple[str, Tuple]  # (predicate, full argument tuple)


@dataclass
class Justification:
    """One rule instance justifying a model atom."""

    atom: GroundAtom
    rule: Rule
    body_atoms: List[GroundAtom] = field(default_factory=list)

    def render(self) -> str:
        predicate, args = self.atom
        rendered = ", ".join(map(repr, args))
        label = self.rule.label or str(self.rule)
        return f"{predicate}({rendered})  ←  {label}"


def _positive_body_atoms(rule: Rule, bindings) -> List[GroundAtom]:
    """Ground positive atoms (incl. aggregate conjunct groups are omitted
    — the aggregate's multiset is a set-level dependency, rendered by the
    rule text itself)."""
    out: List[GroundAtom] = []
    for sg in rule.positive_atom_subgoals():
        args = []
        grounded = True
        for arg in sg.atom.args:
            from repro.datalog.terms import Constant, Variable

            if isinstance(arg, Constant):
                args.append(arg.value)
            else:
                value = bindings.get(arg)
                if value is None:
                    grounded = False
                    break
                args.append(value)
        if grounded:
            out.append((sg.atom.predicate, tuple(args)))
    return out


def _aggregate_witnesses(rule: Rule, ctx: EvalContext, bindings) -> List[GroundAtom]:
    """For each aggregate subgoal, the conjunct atoms of one inner
    solution whose multiset element equals the aggregate's value — the
    *witness* (meaningful for extrema; for sums and counts every group
    member contributes, so the first solution stands in)."""
    from repro.datalog.terms import Constant, Variable
    from repro.engine.grounding import solve_conjunction

    out: List[GroundAtom] = []
    for sg in rule.aggregate_subgoals():
        grouping = rule.grouping_variables(sg)
        inner = {v: bindings[v] for v in grouping if v in bindings}
        solutions = solve_conjunction(sg.conjuncts, ctx, inner)
        if not solutions:
            continue
        witness = solutions[0]
        if sg.multiset_var is not None and isinstance(sg.result, Variable):
            value = bindings.get(sg.result)
            for solution in solutions:
                if solution.get(sg.multiset_var) == value:
                    witness = solution
                    break
        for conjunct in sg.conjuncts:
            args = []
            for arg in conjunct.args:
                if isinstance(arg, Constant):
                    args.append(arg.value)
                else:
                    args.append(witness.get(arg))
            if None not in args:
                out.append((conjunct.predicate, tuple(args)))
    return out


def justifications(
    program: Program, model: Interpretation
) -> Dict[GroundAtom, Justification]:
    """One justification per derived atom of the (fixpoint) model."""
    out: Dict[GroundAtom, Justification] = {}
    ctx = EvalContext(program, frozenset(program.declarations), model, model)
    for rule in program.rules:
        for bindings in evaluate_body(rule, ctx):
            predicate, args = ground_head(rule, bindings)
            atom: GroundAtom = (predicate, args)
            if atom in out:
                continue
            out[atom] = Justification(
                atom=atom,
                rule=rule,
                body_atoms=_positive_body_atoms(rule, bindings)
                + _aggregate_witnesses(rule, ctx, bindings),
            )
    return out


def explain(
    program: Program,
    model: Interpretation,
    predicate: str,
    key: Key,
    *,
    max_depth: int = 12,
    _table: Optional[Dict[GroundAtom, Justification]] = None,
) -> str:
    """A textual derivation tree for one model atom.

    ``key`` is the non-cost argument tuple for cost predicates (the value
    is read off the model) or the full tuple for ordinary predicates.
    """
    rel = model.relation(predicate)
    if rel.is_cost:
        value = rel.cost_of(tuple(key))
        if value is None:
            return f"{predicate}{tuple(key)} is not in the model"
        atom: GroundAtom = (predicate, tuple(key) + (value,))
    else:
        if tuple(key) not in rel.tuples:
            return f"{predicate}{tuple(key)} is not in the model"
        atom = (predicate, tuple(key))

    table = _table if _table is not None else justifications(program, model)
    lines: List[str] = []

    def walk(current: GroundAtom, depth: int, path: frozenset) -> None:
        indent = "  " * depth
        justification = table.get(current)
        name, args = current
        rendered = ", ".join(map(repr, args))
        if justification is None:
            lines.append(f"{indent}{name}({rendered})  [EDB fact]")
            return
        lines.append(f"{indent}{justification.render()}")
        if depth >= max_depth:
            lines.append(f"{indent}  ... (max depth)")
            return
        for body_atom in justification.body_atoms:
            if body_atom in path:
                bname, bargs = body_atom
                brendered = ", ".join(map(repr, bargs))
                lines.append(
                    f"{indent}  {bname}({brendered})  [cyclic justification]"
                )
                continue
            walk(body_atom, depth + 1, path | {current})

    walk(atom, 0, frozenset())
    return "\n".join(lines)
