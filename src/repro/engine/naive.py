"""Naive bottom-up evaluation: Kleene iteration of ``T_P`` (Section 6.2).

The sequence ``J_∅, T_P(J_∅, I), T_P(T_P(J_∅, I), I), ...`` is monotonically
⊑-increasing for monotonic programs and reaches the least fixpoint after
finitely many steps whenever the relevant cost orders are well-founded on
the values that actually arise (the paper's termination discussion).

Non-monotonic programs may oscillate; programs like Example 5.1 (halfsum)
ascend forever toward a fixpoint only reached at ω or beyond.  Both cases
surface as :class:`~repro.datalog.errors.NonTerminationError`, whose
``ascending`` flag distinguishes them — the caller (and the halfsum bench)
can then report the approximation trajectory instead of a wrong answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional

from repro.datalog.errors import NonTerminationError
from repro.datalog.program import Program
from repro.engine.interpretation import Interpretation, delta_counts
from repro.engine.supervisor import (
    NULL_SUPERVISOR,
    SolveInterrupt,
    Supervisor,
)
from repro.engine.tp import apply_tp
from repro.obs.tracer import NULL_TRACER, Tracer


@dataclass
class FixpointResult:
    """Outcome of one component's fixpoint computation."""

    interpretation: Interpretation
    iterations: int
    ascending: bool
    #: Sizes of successive interpretations (diagnostics / benches).
    trajectory: List[int] = field(default_factory=list)
    #: ``"complete"`` for a reached fixpoint; a supervised interrupt
    #: leaves the sound-so-far state here tagged with its
    #: :data:`~repro.engine.supervisor.STATUSES` value.
    status: str = "complete"


def kleene_fixpoint(
    program: Program,
    cdb: FrozenSet[str],
    i: Interpretation,
    *,
    max_iterations: int = 100_000,
    strict: bool = True,
    on_step: Optional[Callable[[int, Interpretation], None]] = None,
    plan: str = "smart",
    storage: str = "boxed",
    tracer: Tracer = NULL_TRACER,
    scc: int = 0,
    supervisor: Supervisor = NULL_SUPERVISOR,
    initial: Optional[Interpretation] = None,
) -> FixpointResult:
    """Iterate ``J ← T_P(J, I)`` from ``J_∅`` until a fixpoint.

    Raises :class:`NonTerminationError` after ``max_iterations`` steps,
    with ``ascending=True`` when the chain was still ⊑-increasing
    (transfinite behaviour, Example 5.1) and ``ascending=False`` when an
    oscillation was detected (non-monotonic program).

    With an enabled ``tracer`` one ``iteration`` event is emitted per
    ``T_P`` application (so the final, unchanged round appears too),
    tagged with component index ``scc``.

    An active ``supervisor`` is polled inside each ``T_P`` application
    and consulted at every round boundary; on interrupt the sound
    last-completed round is attached to the escaping
    :class:`~repro.engine.supervisor.SolveInterrupt`.  ``initial`` seeds
    the iteration from a checkpointed lower bound instead of ``J_∅``;
    iterates then go through the inflationary ``J ⊔ T_P(J, I)``, which
    converges to the same least fixpoint (checkpoints are taken at round
    boundaries, so resumed chains replay the uninterrupted ones).
    """
    resumed = initial is not None
    j = (
        initial.copy()
        if resumed
        else Interpretation(program.declarations, storage=storage)
    )
    ascending = True
    trajectory: List[int] = []
    seen: Dict[int, int] = {j.fingerprint(): 0}
    supervise = supervisor.active
    for step in range(1, max_iterations + 1):
        t_round = tracer.clock() if tracer.enabled else 0.0
        try:
            j_next = apply_tp(
                program,
                cdb,
                j,
                i,
                strict=strict,
                plan=plan,
                storage=storage,
                tracer=tracer,
                supervisor=supervisor,
                scc=scc,
            )
        except SolveInterrupt as interrupt:
            # Mid-round: the staging output is discarded; ``j`` is the
            # last complete (hence sound) iterate.
            interrupt.attach(
                FixpointResult(
                    interpretation=j,
                    iterations=step - 1,
                    ascending=ascending,
                    trajectory=trajectory,
                    status=interrupt.status,
                )
            )
            raise
        if resumed:
            j_next = j.join(j_next)
        if tracer.enabled or supervise:
            new_atoms, changed = delta_counts(j, j_next)
        if tracer.enabled:
            round_wall = round(tracer.clock() - t_round, 6)
            tracer.emit(
                "iteration",
                scc=scc,
                iteration=step,
                delta_atoms=new_atoms + changed,
                new_atoms=new_atoms,
                changed_atoms=changed,
                total_atoms=j_next.total_size(),
                wall_s=round_wall,
            )
            m = tracer.metrics
            m.counter("fixpoint.rounds").inc()
            m.counter("fixpoint.new_atoms").inc(new_atoms)
            m.counter("fixpoint.changed_atoms").inc(changed)
            m.histogram("fixpoint.delta_atoms").observe(
                float(new_atoms + changed)
            )
            m.timer("fixpoint.round_wall_s").observe(round_wall)
        if on_step is not None:
            on_step(step, j_next)
        trajectory.append(j_next.total_size())
        if j_next == j:
            return FixpointResult(
                interpretation=j,
                iterations=step - 1,
                ascending=ascending,
                trajectory=trajectory,
            )
        if ascending and not j.leq(j_next):
            ascending = False
        fp = j_next.fingerprint()
        if fp in seen and not ascending:
            raise NonTerminationError(
                f"T_P oscillates (state of step {step} already seen at step "
                f"{seen[fp]}); the component is not monotonic on this "
                f"extension",
                ascending=False,
            )
        seen[fp] = step
        j = j_next
        if supervise:
            try:
                supervisor.on_round(
                    scc=scc,
                    iteration=step,
                    new_atoms=new_atoms,
                    changed_atoms=changed,
                    total_atoms=j.total_size(),
                )
            except SolveInterrupt as interrupt:
                interrupt.attach(
                    FixpointResult(
                        interpretation=j,
                        iterations=step,
                        ascending=ascending,
                        trajectory=trajectory,
                        status=interrupt.status,
                    )
                )
                raise
    raise NonTerminationError(
        f"no fixpoint after {max_iterations} iterations "
        f"({'still ascending — may require transfinite iteration' if ascending else 'not ascending'})",
        ascending=ascending,
    )
