"""Compiled query execution: cached rule plans over slot registers.

This layer sits between the fixpoint evaluators (``tp``, ``seminaive``,
``greedy``) and the raw relations.  Per rule — and per *seed shape*, the
set of variables a semi-naive delta seed pre-binds — it compiles once:

* a **join order** for the body.  With ``plan="smart"`` the order is
  selectivity-aware: among the subgoals evaluable at each step
  (:func:`~repro.engine.grounding.subgoal_readiness` — the safety
  condition is shared with the legacy scheduler), positive atoms are
  ranked by the estimated cardinality of their indexed lookup instead of
  by the legacy bound-variable count.  ``plan="off"`` preserves the
  legacy :func:`~repro.engine.grounding.schedule` order exactly.
* a **slot program**: every rule variable gets a register slot, and each
  subgoal becomes a step with precomputed bound/free argument positions,
  constant checks, duplicate-variable checks, head projection, and (for
  aggregate subgoals) the grouping/local split and conjunct order — the
  work the interpreted path redoes for every binding.

Plans are cached on the :class:`~repro.datalog.program.Program`
(``program ⋅ rule ⋅ pre-bound variables ⋅ mode``), so ``apply_tp`` and the
delta-driven evaluators stop re-deriving join orders on every call.
Lookups go through the relations' persistent incremental indexes
(:class:`~repro.engine.interpretation.Relation`), which survive across
fixpoint rounds.  See docs/PERFORMANCE.md.
"""

from __future__ import annotations

from time import perf_counter
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.aggregates.base import EmptyAggregateError
from repro.datalog.atoms import (
    AggregateSubgoal,
    Atom,
    AtomSubgoal,
    BuiltinSubgoal,
    Subgoal,
)
from repro.datalog.errors import SafetyError
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable, evaluate_expr
from repro.engine.grounding import (
    Bindings,
    EvalContext,
    _compare,
    schedule,
    subgoal_readiness,
)
from repro.testing import faults as _faults
from repro.engine.interpretation import Key, Relation
from repro.util.multiset import FrozenMultiset

#: Register value for an unbound variable.
_UNSET = object()

#: Plan modes: "smart" = selectivity-aware join order; "off" = legacy
#: schedule order (escape hatch; still compiled and indexed).
PLAN_MODES = ("smart", "off")


def _check_mode(mode: str) -> str:
    if mode not in PLAN_MODES:
        raise ValueError(f"unknown plan mode {mode!r}; expected one of {PLAN_MODES}")
    return mode


#: Pushdown modes: "auto" = apply the aggregate-pushdown rewrite wherever
#: the premappability analysis proves it sound; "off" = evaluate the
#: program exactly as written (escape hatch, mirrors ``plan="off"``).
PUSHDOWN_MODES = ("auto", "off")


def _check_pushdown_mode(mode: str) -> str:
    if mode not in PUSHDOWN_MODES:
        raise ValueError(
            f"unknown pushdown mode {mode!r}; expected one of {PUSHDOWN_MODES}"
        )
    return mode


class _SlotView:
    """A read-only Variable→value mapping over a register array, for
    :func:`~repro.datalog.terms.evaluate_expr`."""

    __slots__ = ("_slot_of", "_regs")

    def __init__(self, slot_of: Dict[Variable, int], regs: List[Any]) -> None:
        self._slot_of = slot_of
        self._regs = regs

    def __getitem__(self, var: Variable) -> Any:
        slot = self._slot_of.get(var)
        if slot is None:
            raise KeyError(var)
        value = self._regs[slot]
        if value is _UNSET:
            raise KeyError(var)
        return value

    def __contains__(self, var: object) -> bool:
        try:
            self[var]  # type: ignore[index]
        except KeyError:
            return False
        return True

    def get(self, var: Variable, default: Any = None) -> Any:
        try:
            return self[var]
        except KeyError:
            return default


# ---------------------------------------------------------------------------
# Compiled steps
# ---------------------------------------------------------------------------


class _AtomStep:
    """A positive, non-default atom compiled to an indexed join."""

    __slots__ = (
        "predicate",
        "positions",
        "value_parts",
        "writes",
        "dup_checks",
        "check_only",
        "mode",
    )

    def __init__(
        self,
        predicate: str,
        positions: Tuple[int, ...],
        value_parts: Tuple[Tuple[bool, Any], ...],
        writes: Tuple[Tuple[int, int], ...],
        dup_checks: Tuple[Tuple[int, int], ...],
        mode: str = "positive",
    ) -> None:
        self.predicate = predicate
        self.positions = positions  # bound argument positions (sorted)
        #: parallel to positions: (is_slot, slot-or-constant-value)
        self.value_parts = value_parts
        self.writes = writes  # (row position, destination slot)
        self.dup_checks = dup_checks  # (row position, earlier row position)
        self.check_only = not writes and not dup_checks
        self.mode = mode  # "positive" | "aggregate" (oracle routing)

    def prepare(self, ctx: EvalContext) -> Relation:
        return ctx.relation(self.predicate, mode=self.mode)

    def run(
        self, regs: List[Any], rel: Relation, ctx: EvalContext, out: List[List[Any]]
    ) -> None:
        if self.positions:
            key = tuple(
                regs[payload] if is_slot else payload
                for is_slot, payload in self.value_parts
            )
            rows: Sequence[Key] = rel.lookup(self.positions, key)
        else:
            rows = rel.rows_list()
        if self.check_only:
            if rows:
                out.append(regs)
            return
        writes = self.writes
        dups = self.dup_checks
        for row in rows:
            if dups:
                ok = True
                for pos, pos0 in dups:
                    if row[pos] != row[pos0]:
                        ok = False
                        break
                if not ok:
                    continue
            new = regs[:]
            for pos, slot in writes:
                new[slot] = row[pos]
            out.append(new)


class _DefaultAtomStep:
    """A default-value cost atom with its key bound: core-or-default read."""

    __slots__ = ("predicate", "key_parts", "cost_kind", "cost_payload", "mode")

    def __init__(
        self,
        predicate: str,
        key_parts: Tuple[Tuple[bool, Any], ...],
        cost_kind: str,  # "const" | "bound" | "free"
        cost_payload: Any,
        mode: str = "positive",
    ) -> None:
        self.predicate = predicate
        self.key_parts = key_parts
        self.cost_kind = cost_kind
        self.cost_payload = cost_payload
        self.mode = mode

    def prepare(self, ctx: EvalContext) -> Relation:
        return ctx.relation(self.predicate, mode=self.mode)

    def run(
        self, regs: List[Any], rel: Relation, ctx: EvalContext, out: List[List[Any]]
    ) -> None:
        key = tuple(
            regs[payload] if is_slot else payload
            for is_slot, payload in self.key_parts
        )
        value = rel.cost_of(key)
        assert value is not None  # default predicates always have a value
        kind = self.cost_kind
        if kind == "free":
            new = regs[:]
            new[self.cost_payload] = value
            out.append(new)
        elif kind == "bound":
            if regs[self.cost_payload] == value:
                out.append(regs)
        else:  # const
            if self.cost_payload == value:
                out.append(regs)


class _NegatedStep:
    """Ground negation: satisfied iff the ground atom is absent."""

    __slots__ = ("predicate", "arg_parts", "is_cost")

    def __init__(
        self,
        predicate: str,
        arg_parts: Tuple[Tuple[bool, Any], ...],
        is_cost: bool,
    ) -> None:
        self.predicate = predicate
        self.arg_parts = arg_parts
        self.is_cost = is_cost

    def prepare(self, ctx: EvalContext) -> Relation:
        return ctx.relation(self.predicate, mode="negated")

    def run(
        self, regs: List[Any], rel: Relation, ctx: EvalContext, out: List[List[Any]]
    ) -> None:
        values = tuple(
            regs[payload] if is_slot else payload
            for is_slot, payload in self.arg_parts
        )
        if self.is_cost:
            if rel.cost_of(values[:-1]) != values[-1]:
                out.append(regs)
        elif values not in rel.tuples:
            out.append(regs)


class _BuiltinStep:
    """``lhs op rhs``, either a filter (all bound) or a ``V = expr`` assign."""

    __slots__ = ("op", "lhs", "rhs", "slot_of", "assign_slot", "assign_expr")

    def __init__(
        self,
        sg: BuiltinSubgoal,
        slot_of: Dict[Variable, int],
        assign_slot: Optional[int],
        assign_expr: Any,
    ) -> None:
        self.op = sg.op
        self.lhs = sg.lhs
        self.rhs = sg.rhs
        self.slot_of = slot_of
        self.assign_slot = assign_slot  # destination slot, or None for filters
        self.assign_expr = assign_expr  # the bound side, when assigning

    def prepare(self, ctx: EvalContext) -> None:
        return None

    def run(
        self, regs: List[Any], _state: None, ctx: EvalContext, out: List[List[Any]]
    ) -> None:
        view = _SlotView(self.slot_of, regs)
        try:
            if self.assign_slot is not None:
                value = evaluate_expr(self.assign_expr, view)
                new = regs[:]
                new[self.assign_slot] = value
                out.append(new)
                return
            left = evaluate_expr(self.lhs, view)
            right = evaluate_expr(self.rhs, view)
        except ZeroDivisionError:
            return
        try:
            satisfied = _compare(self.op, left, right)
        except TypeError:
            satisfied = False  # incomparable values never satisfy a built-in
        if satisfied:
            out.append(regs)


class _AggregateStep:
    """An aggregate subgoal with its grouping/local split, conjunct order
    and aggregate function resolved at compile time (Definition 2.4).

    The interior conjunction is itself compiled: the conjuncts run as
    atom steps over a private register array (grouping variables copied
    in from the outer registers at entry), so per-group re-aggregation
    does no bindings-dict work at all."""

    __slots__ = (
        "function",
        "entry_copies",  # ((outer slot, inner slot), ...) bound grouping
        "inner_steps",
        "inner_nslots",
        "multiset_slot",  # inner slot of the multiset variable, or None
        "free_group_pairs",  # ((outer slot, inner slot), ...) =r grouping
        "restricted",
        "result_kind",  # "const" | "bound" | "free"
        "result_payload",
    )

    def __init__(
        self,
        function: Any,
        entry_copies: Tuple[Tuple[int, int], ...],
        inner_steps: Tuple[Any, ...],
        inner_nslots: int,
        multiset_slot: Optional[int],
        free_group_pairs: Tuple[Tuple[int, int], ...],
        restricted: bool,
        result_kind: str,
        result_payload: Any,
    ) -> None:
        self.function = function
        self.entry_copies = entry_copies
        self.inner_steps = inner_steps
        self.inner_nslots = inner_nslots
        self.multiset_slot = multiset_slot
        self.free_group_pairs = free_group_pairs
        self.restricted = restricted
        self.result_kind = result_kind
        self.result_payload = result_payload

    def prepare(self, ctx: EvalContext) -> None:
        return None

    def _detail(self) -> str:
        """The aggregate's name, for fault-seam matching."""
        fn = self.function
        return getattr(fn, "name", None) or type(fn).__name__

    def _project(self, rows: Sequence[List[Any]]) -> FrozenMultiset:
        """SQL projection onto the multiset variable, duplicates retained;
        implicit boolean aggregation counts each solution as 'true'."""
        mslot = self.multiset_slot
        if mslot is not None:
            return FrozenMultiset(r[mslot] for r in rows)
        return FrozenMultiset([1] * len(rows))

    def _emit(
        self,
        regs: List[Any],
        value: Any,
        group: Optional[Tuple[Any, ...]],
        out: List[List[Any]],
    ) -> None:
        kind = self.result_kind
        if kind == "bound":
            if regs[self.result_payload] != value:
                return
        elif kind == "const":
            if self.result_payload != value:
                return
        if group is None and kind != "free":
            out.append(regs)
            return
        new = regs[:]
        if group is not None:
            for (outer_slot, _), component in zip(self.free_group_pairs, group):
                new[outer_slot] = component
        if kind == "free":
            new[self.result_payload] = value
        out.append(new)

    def run(
        self, regs: List[Any], _state: None, ctx: EvalContext, out: List[List[Any]]
    ) -> None:
        inner: List[Any] = [_UNSET] * self.inner_nslots
        for outer_slot, inner_slot in self.entry_copies:
            inner[inner_slot] = regs[outer_slot]
        solutions: List[List[Any]] = [inner]
        for step in self.inner_steps:
            state = step.prepare(ctx)
            nxt: List[List[Any]] = []
            run = step.run
            for r in solutions:
                run(r, state, ctx, nxt)
            solutions = nxt
            if not solutions:
                break
        if self.free_group_pairs:
            # =r subgoal generating its grouping bindings: aggregate each
            # group of the inner solutions separately.
            groups: Dict[Tuple[Any, ...], List[List[Any]]] = {}
            for solution in solutions:
                group_key = tuple(
                    solution[inner_slot]
                    for _, inner_slot in self.free_group_pairs
                )
                groups.setdefault(group_key, []).append(solution)
            for group_key, group_rows in groups.items():
                if _faults._ACTIVE is not None:  # fault-injection seam
                    _faults.trip("aggregate_apply", self._detail())
                value = self.function(self._project(group_rows))
                self._emit(regs, value, group_key, out)
            return
        if self.restricted and not solutions:
            return
        if _faults._ACTIVE is not None:  # fault-injection seam
            _faults.trip("aggregate_apply", self._detail())
        try:
            value = self.function(self._project(solutions))
        except EmptyAggregateError:
            return
        self._emit(regs, value, None, out)


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------


class RulePlan:
    """One rule compiled against a fixed pre-bound variable set."""

    __slots__ = (
        "rule",
        "mode",
        "order",
        "steps",
        "nslots",
        "slot_of",
        "seed_slots",
        "head_predicate",
        "head_parts",
    )

    def __init__(
        self,
        rule: Rule,
        mode: str,
        order: List[Subgoal],
        steps: List[Any],
        nslots: int,
        slot_of: Dict[Variable, int],
        head_parts: Tuple[Tuple[bool, Any], ...],
    ) -> None:
        self.rule = rule
        self.mode = mode
        self.order = order
        self.steps = steps
        self.nslots = nslots
        self.slot_of = slot_of
        self.head_predicate = rule.head.predicate
        self.head_parts = head_parts

    def execute(
        self, ctx: EvalContext, seed: Optional[Bindings] = None
    ) -> Iterator[Tuple[str, Key]]:
        """Enumerate ``(head predicate, ground argument tuple)`` pairs."""
        regs: List[Any] = [_UNSET] * self.nslots
        if seed:
            slot_of = self.slot_of
            for var, value in seed.items():
                slot = slot_of.get(var)
                if slot is not None:
                    regs[slot] = value
        current: List[List[Any]] = [regs]
        for step in self.steps:
            state = step.prepare(ctx)
            nxt: List[List[Any]] = []
            run = step.run
            for r in current:
                run(r, state, ctx, nxt)
            if not nxt:
                return
            current = nxt
        predicate = self.head_predicate
        head_parts = self.head_parts
        rule = self.rule
        for r in current:
            values = []
            for is_slot, payload in head_parts:
                if is_slot:
                    value = r[payload]
                    if value is _UNSET:
                        raise SafetyError(
                            f"head variable of {rule} unbound after body "
                            f"evaluation"
                        )
                    values.append(value)
                else:
                    values.append(payload)
            yield predicate, tuple(values)


def _parts_for(
    args: Sequence[Any],
    slot_of: Dict[Variable, int],
    positions: Sequence[int],
) -> Tuple[Tuple[bool, Any], ...]:
    """(is_slot, slot-or-value) per argument position."""
    parts = []
    for pos in positions:
        arg = args[pos]
        if isinstance(arg, Constant):
            parts.append((False, arg.value))
        else:
            parts.append((True, slot_of[arg]))
    return tuple(parts)


def _compile_positive_atom(
    atom: Atom,
    program: Program,
    slot_of: Dict[Variable, int],
    bound: set,
    mode: str = "positive",
) -> Any:
    """Compile a positive atom (a body subgoal or an aggregate-interior
    conjunct) into an :class:`_AtomStep` / :class:`_DefaultAtomStep`."""
    decl = program.decl(atom.predicate)
    if decl.has_default:
        cost_term = atom.args[-1]
        if isinstance(cost_term, Constant):
            kind, payload = "const", cost_term.value
        elif cost_term in bound:
            kind, payload = "bound", slot_of[cost_term]
        else:
            kind, payload = "free", slot_of[cost_term]
        return _DefaultAtomStep(
            atom.predicate,
            _parts_for(atom.args, slot_of, range(decl.key_arity)),
            kind,
            payload,
            mode,
        )
    bound_positions: List[int] = []
    writes: List[Tuple[int, int]] = []
    dup_checks: List[Tuple[int, int]] = []
    first_seen: Dict[Variable, int] = {}
    for pos, arg in enumerate(atom.args):
        if isinstance(arg, Constant) or arg in bound:
            bound_positions.append(pos)
        elif arg in first_seen:
            dup_checks.append((pos, first_seen[arg]))
        else:
            first_seen[arg] = pos
            writes.append((pos, slot_of[arg]))
    positions = tuple(bound_positions)
    return _AtomStep(
        atom.predicate,
        positions,
        _parts_for(atom.args, slot_of, positions),
        tuple(writes),
        tuple(dup_checks),
        mode,
    )


def _compile_atom(
    sg: AtomSubgoal,
    program: Program,
    slot_of: Dict[Variable, int],
    bound: set,
) -> Any:
    atom = sg.atom
    if sg.negated:
        return _NegatedStep(
            atom.predicate,
            _parts_for(atom.args, slot_of, range(len(atom.args))),
            program.decl(atom.predicate).is_cost_predicate,
        )
    return _compile_positive_atom(atom, program, slot_of, bound)


def _compile_builtin(
    sg: BuiltinSubgoal, slot_of: Dict[Variable, int], bound: set
) -> _BuiltinStep:
    assign_slot: Optional[int] = None
    assign_expr: Any = None
    if sg.op == "=":
        if isinstance(sg.lhs, Variable) and sg.lhs not in bound:
            assign_slot, assign_expr = slot_of[sg.lhs], sg.rhs
        elif isinstance(sg.rhs, Variable) and sg.rhs not in bound:
            assign_slot, assign_expr = slot_of[sg.rhs], sg.lhs
    return _BuiltinStep(sg, slot_of, assign_slot, assign_expr)


def _order_conjuncts(
    conjuncts: Sequence[Atom], program: Program, bound: FrozenSet[Variable]
) -> Tuple[Atom, ...]:
    """Static conjunct order for an aggregate interior: atoms whose
    default-value keys are bound go first (mirrors ``solve_conjunction``,
    hoisted out of the per-binding loop)."""
    remaining = list(conjuncts)
    ordered: List[Atom] = []
    known = set(bound)
    while remaining:
        progressed = False
        for idx, conjunct in enumerate(remaining):
            decl = program.decl(conjunct.predicate)
            if decl.has_default:
                key_vars = {
                    a
                    for a in conjunct.args[: decl.key_arity]
                    if isinstance(a, Variable)
                }
                if not key_vars <= known:
                    continue
            ordered.append(remaining.pop(idx))
            known |= conjunct.variable_set()
            progressed = True
            break
        if not progressed:
            raise SafetyError(
                f"cannot schedule aggregate conjuncts "
                f"{[str(c) for c in remaining]}"
            )
    return tuple(ordered)


def _compile_aggregate(
    sg: AggregateSubgoal,
    rule: Rule,
    program: Program,
    slot_of: Dict[Variable, int],
    bound: set,
) -> _AggregateStep:
    grouping = rule.grouping_variables(sg)
    bound_grouping = sorted(
        (v for v in grouping if v in bound), key=lambda v: v.name
    )
    free_grouping = sorted(
        (v for v in grouping if v not in bound), key=lambda v: v.name
    )
    if free_grouping and not sg.restricted:
        raise SafetyError(
            f"'='-form aggregate {sg} evaluated with unbound grouping "
            f"variables "
            f"{', '.join(v.name for v in free_grouping)} "
            f"(range restriction violated)"
        )
    # Private register space for the interior: grouping variables first
    # (copied from the outer registers at entry when bound), then every
    # conjunct variable — including the multiset variable, which is
    # deliberately *not* copied in even if bound outside (the projection
    # retains duplicates over the full solution set, Definition 2.4).
    inner_slot_of: Dict[Variable, int] = {}
    for v in bound_grouping:
        inner_slot_of.setdefault(v, len(inner_slot_of))
    for conjunct in sg.conjuncts:
        for v in conjunct.variables():
            inner_slot_of.setdefault(v, len(inner_slot_of))
    entry_copies = tuple(
        (slot_of[v], inner_slot_of[v]) for v in bound_grouping
    )
    inner_bound: set = set(bound_grouping)
    inner_steps: List[Any] = []
    for conjunct in _order_conjuncts(
        sg.conjuncts, program, frozenset(inner_bound)
    ):
        inner_steps.append(
            _compile_positive_atom(
                conjunct, program, inner_slot_of, inner_bound, "aggregate"
            )
        )
        inner_bound |= conjunct.variable_set()
    multiset_slot = (
        inner_slot_of[sg.multiset_var] if sg.multiset_var is not None else None
    )
    free_group_pairs = tuple(
        (slot_of[v], inner_slot_of[v]) for v in free_grouping
    )
    result = sg.result
    if isinstance(result, Constant):
        result_kind, result_payload = "const", result.value
    elif result in bound:
        result_kind, result_payload = "bound", slot_of[result]
    else:
        result_kind, result_payload = "free", slot_of[result]
    return _AggregateStep(
        program.aggregate_function(sg.function),
        entry_copies,
        tuple(inner_steps),
        len(inner_slot_of),
        multiset_slot,
        free_group_pairs,
        sg.restricted,
        result_kind,
        result_payload,
    )


# ---------------------------------------------------------------------------
# Selectivity-aware ordering
# ---------------------------------------------------------------------------


def _estimate_lookup(
    sg: AtomSubgoal, program: Program, ctx: EvalContext, bound: set
) -> float:
    """Estimated row count of the indexed lookup for a positive atom.

    Uses the live index's average bucket size when one exists; otherwise
    assumes each bound column shrinks the relation by its ``arity``-th
    root (a dimensional-uniformity guess — crude, but it only has to rank
    ready subgoals, not predict run times).
    """
    atom = sg.atom
    rel = ctx.relation(atom.predicate)
    n = len(rel)
    if n == 0:
        return 0.0
    positions = tuple(
        pos
        for pos, arg in enumerate(atom.args)
        if isinstance(arg, Constant) or arg in bound
    )
    if not positions:
        return float(n)
    if len(positions) == len(atom.args):
        return 0.5  # pure existence check
    index = rel._indexes.get(positions)
    if index:
        return n / len(index)
    return float(n) ** (1.0 - len(positions) / len(atom.args))


def plan_order(
    rule: Rule,
    program: Program,
    pre_bound: FrozenSet[Variable],
    *,
    mode: str = "smart",
    ctx: Optional[EvalContext] = None,
) -> List[Subgoal]:
    """A body evaluation order.

    ``mode="off"`` (or no context to estimate against) delegates to the
    legacy :func:`~repro.engine.grounding.schedule`.  ``mode="smart"``
    keeps the legacy priority classes for built-ins, default atoms,
    negation and aggregates, but ranks ready positive atoms by the
    estimated cardinality of their indexed lookup, so the cheapest join
    runs first.
    """
    _check_mode(mode)
    if mode == "off" or ctx is None:
        return schedule(rule, program, pre_bound)
    remaining = list(rule.body)
    ordered: List[Subgoal] = []
    bound: set = set(pre_bound)
    while remaining:
        best_index: Optional[int] = None
        best_key: Tuple[int, float] = (99, float("inf"))
        best_newly: set = set()
        for idx, sg in enumerate(remaining):
            ready = subgoal_readiness(sg, rule, program, bound)
            if ready is None:
                continue
            priority, newly = ready
            if (
                isinstance(sg, AtomSubgoal)
                and not sg.negated
                and not program.decl(sg.atom.predicate).has_default
            ):
                key = (2, _estimate_lookup(sg, program, ctx, bound))
            else:
                key = (priority, 0.0)
            if key < best_key:
                best_key, best_index, best_newly = key, idx, newly
        if best_index is None:
            raise SafetyError(
                f"cannot schedule body of rule {rule}: remaining subgoals "
                f"{[str(s) for s in remaining]} with "
                f"bound={sorted(v.name for v in bound)}"
            )
        ordered.append(remaining.pop(best_index))
        bound |= best_newly
    return ordered


# ---------------------------------------------------------------------------
# Compilation & cache
# ---------------------------------------------------------------------------


def compile_rule(
    rule: Rule,
    program: Program,
    pre_bound: FrozenSet[Variable] = frozenset(),
    *,
    mode: str = "smart",
    ctx: Optional[EvalContext] = None,
) -> RulePlan:
    """Compile ``rule`` against the given pre-bound variable set."""
    order = plan_order(rule, program, pre_bound, mode=mode, ctx=ctx)
    slot_of: Dict[Variable, int] = {}
    for var in rule.head.variables():
        slot_of.setdefault(var, len(slot_of))
    for sg in rule.body:
        for var in sorted(sg.variable_set(), key=lambda v: v.name):
            slot_of.setdefault(var, len(slot_of))
    bound: set = set(pre_bound)
    steps: List[Any] = []
    for sg in order:
        if isinstance(sg, AtomSubgoal):
            steps.append(_compile_atom(sg, program, slot_of, bound))
        elif isinstance(sg, BuiltinSubgoal):
            steps.append(_compile_builtin(sg, slot_of, bound))
        elif isinstance(sg, AggregateSubgoal):
            steps.append(_compile_aggregate(sg, rule, program, slot_of, bound))
        else:  # pragma: no cover - exhaustive
            raise TypeError(f"unknown subgoal type {type(sg).__name__}")
        ready = subgoal_readiness(sg, rule, program, bound)
        if ready is not None:
            bound |= ready[1]
    head_parts = []
    for arg in rule.head.args:
        if isinstance(arg, Constant):
            head_parts.append((False, arg.value))
        else:
            head_parts.append((True, slot_of[arg]))
    return RulePlan(
        rule,
        mode,
        order,
        steps,
        len(slot_of),
        slot_of,
        tuple(head_parts),
    )


def get_plan(
    program: Program,
    rule: Rule,
    pre_bound: FrozenSet[Variable] = frozenset(),
    *,
    mode: str = "smart",
    ctx: Optional[EvalContext] = None,
) -> RulePlan:
    """The cached plan for ``(rule, pre-bound variables, mode)``.

    Plans live on the program object; smart-mode selectivity estimates
    are taken from the relation sizes at first compilation (typically the
    initial ``T_P`` round, where the extensional relations dominate) and
    the resulting order is reused for the program's lifetime.

    When the context carries an enabled tracer (:mod:`repro.obs`), cache
    probes are counted as plan-cache hits/misses.
    """
    cache: Dict[Tuple[int, FrozenSet[str], str], RulePlan]
    cache = program.__dict__.setdefault("_exec_plan_cache", {})
    cache_key = (
        id(rule),
        frozenset(v.name for v in pre_bound),
        _check_mode(mode),
    )
    plan = cache.get(cache_key)
    if ctx is not None and ctx.tracer.enabled:
        ctx.tracer.count_plan(plan is not None)
    if plan is None:
        plan = compile_rule(rule, program, pre_bound, mode=mode, ctx=ctx)
        cache[cache_key] = plan
    return plan


def clear_plan_cache(program: Program) -> None:
    """Drop every cached plan (tests / planners that change statistics)."""
    program.__dict__.pop("_exec_plan_cache", None)
    program.__dict__.pop("_pushdown_cache", None)


def get_pushdown(program: Program, classification: Any = None) -> Any:
    """The cached aggregate-pushdown rewrite of ``program``.

    Like rule plans, the rewrite is computed once per program object and
    cached on it — the premappability analysis
    (:mod:`repro.analysis.premap`) runs whole-program static passes, so
    repeated solves of the same database must not pay for it again.
    ``classification`` optionally reuses an already-computed
    :class:`~repro.analysis.classify.ProgramClassification` on the first
    (cache-filling) call.  Returns a
    :class:`~repro.analysis.premap.PushdownResult`; callers check
    ``.changed`` and evaluate ``.program``.
    """
    cached = program.__dict__.get("_pushdown_cache")
    if cached is None:
        # Lazy import: analysis.premap imports the classify/fd passes,
        # which reach back into the engine (greedy_applicable).
        from repro.analysis.premap import (
            analyze_premappability,
            apply_pushdown,
        )

        report = analyze_premappability(
            program, classification=classification
        )
        cached = apply_pushdown(program, report)
        program.__dict__["_pushdown_cache"] = cached
    return cached


def run_rule(
    rule: Rule,
    ctx: EvalContext,
    *,
    seed: Optional[Bindings] = None,
    mode: str = "smart",
) -> Iterator[Tuple[str, Key]]:
    """Enumerate the ground head atoms ``rule`` derives under ``ctx``.

    ``seed`` pre-binds variables (semi-naive delta seeds); the plan is
    compiled once per distinct seed *shape* and cached on the program.

    With an enabled tracer on the context the execution is materialised
    eagerly so its wall time and derived-atom count can be charged to the
    rule (``tracer.record_rule``); the untraced path stays lazy and pays
    only the ``enabled`` check.
    """
    if _faults._ACTIVE is not None:  # fault-injection seam
        _faults.trip("rule_firing", rule.head.predicate)
    pre_bound = frozenset(seed) if seed else frozenset()
    plan = get_plan(ctx.program, rule, pre_bound, mode=mode, ctx=ctx)
    tracer = ctx.tracer
    if not tracer.enabled:
        return plan.execute(ctx, seed)
    t0 = perf_counter()
    derived = list(plan.execute(ctx, seed))
    tracer.record_rule(rule, len(derived), perf_counter() - t0)
    return iter(derived)
