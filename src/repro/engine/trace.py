"""Deprecated alias for :mod:`repro.engine.provenance`.

``engine.trace`` historically held the provenance/explain machinery;
the name now collides with the telemetry layer's *tracing*
(:mod:`repro.obs`), so the module moved to
:mod:`repro.engine.provenance`.  This shim keeps old imports working —
new code should import from the new location.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.engine.trace is deprecated; import from "
    "repro.engine.provenance instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.engine.provenance import (  # noqa: E402,F401
    GroundAtom,
    Justification,
    explain,
    justifications,
)

__all__ = ["GroundAtom", "Justification", "explain", "justifications"]
