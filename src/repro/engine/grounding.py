"""Rule-body evaluation: joins, built-ins, aggregate subgoals, defaults.

Ground instances of a rule body are enumerated by a left-to-right join
whose order is *scheduled* statically: at each step the next subgoal must
be evaluable given the variables bound so far (positive atoms bind their
variables; ``V = expr`` built-ins bind ``V``; aggregate subgoals need
their grouping variables bound and bind their result; default-value
predicates and negated atoms need their key variables bound).  For
range-restricted rules (Definition 2.5) a valid order always exists.

Aggregate subgoals are evaluated per Definition 2.4: the inner conjunction
is solved with the grouping variables fixed, the solutions are projected
onto the multiset variable *retaining duplicates* (SQL projection), and
the aggregate function is applied — with the ``=r`` form failing on the
empty multiset, and the ``=`` form using ``F(∅)``.  Default-value
conjuncts read their default when the key is bound but no core entry
exists, which is what makes pseudo-monotonic aggregates over fixed
fan-in sound (Example 4.4).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.aggregates.base import EmptyAggregateError
from repro.datalog.atoms import (
    AggregateSubgoal,
    Atom,
    AtomSubgoal,
    BuiltinSubgoal,
    Subgoal,
)
from repro.datalog.errors import SafetyError
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable, evaluate_expr, expr_variable_set
from repro.engine.interpretation import Interpretation, Key, Relation
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.util.multiset import FrozenMultiset

Bindings = Dict[Variable, Any]


class EvalContext:
    """Predicate lookup (CDB → J, everything else → I).

    Indexes are owned by the relations themselves
    (:class:`~repro.engine.interpretation.Relation`): they are built on
    first lookup and maintained in place by the relation's mutator
    methods, so they survive across ``T_P`` applications and semi-naive
    rounds — a context is just the predicate→relation routing table.

    ``negation_source`` and ``aggregate_source`` optionally redirect
    negated subgoals and aggregate interiors to a *fixed oracle*
    interpretation — the mechanism behind the alternating fixpoint of the
    well-founded semantics and the reducts of stable-model checking
    (Sections 5.3–5.5), where those subgoal kinds are evaluated against a
    candidate model rather than the growing one.
    """

    def __init__(
        self,
        program: Program,
        cdb: frozenset,
        j: Interpretation,
        i: Interpretation,
        *,
        negation_source: Optional[Interpretation] = None,
        aggregate_source: Optional[Interpretation] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.program = program
        self.cdb = cdb
        self.j = j
        self.i = i
        self.negation_source = negation_source
        self.aggregate_source = aggregate_source
        #: Telemetry hub (:mod:`repro.obs`); the shared disabled tracer
        #: unless the solve is being traced.
        self.tracer = tracer

    def relation(
        self, predicate: str, *, mode: str = "positive"
    ) -> Relation:
        """The relation to read for a subgoal of the given ``mode``
        (``"positive"`` | ``"negated"`` | ``"aggregate"``)."""
        if mode == "negated" and self.negation_source is not None:
            return self.negation_source.relation(predicate)
        if mode == "aggregate" and self.aggregate_source is not None:
            return self.aggregate_source.relation(predicate)
        source = self.j if predicate in self.cdb else self.i
        return source.relation(predicate)

    def rows_matching(
        self,
        predicate: str,
        bound_positions: Tuple[int, ...],
        bound_values: Key,
        *,
        mode: str = "positive",
    ) -> Sequence[Tuple]:
        """Rows of ``predicate`` whose ``bound_positions`` equal
        ``bound_values`` — via the relation's persistent hash index."""
        rel = self.relation(predicate, mode=mode)
        if not bound_positions:
            return rel.rows_list()
        return rel.lookup(bound_positions, bound_values)

    def note_insert(self, predicate: str, row: Tuple) -> None:
        """Deprecated no-op, kept for API compatibility.

        Indexes live on the relations and are maintained by the mutator
        methods (``add_tuple``/``set_cost``), so in-place inserts no
        longer need a context notification.
        """


# ---------------------------------------------------------------------------
# Scheduling
# ---------------------------------------------------------------------------


def subgoal_readiness(
    sg: Subgoal, rule: Rule, program: Program, bound: set
) -> Optional[Tuple[int, set]]:
    """(priority, newly_bound) if ``sg`` is evaluable under ``bound``, else
    None.  Shared by :func:`schedule` and the selectivity-aware planner
    (:mod:`repro.engine.exec`), which must agree on *readiness* even when
    they rank ready subgoals differently."""
    if isinstance(sg, AtomSubgoal):
        decl = program.decl(sg.atom.predicate)
        atom_vars = set(sg.atom.variables())
        if sg.negated:
            if atom_vars <= bound:
                return (3, set())
            return None
        if decl.has_default:
            key_vars = {
                a
                for a in sg.atom.args[: decl.key_arity]
                if isinstance(a, Variable)
            }
            if key_vars <= bound:
                return (1, atom_vars - bound)
            return None
        # Ordinary / non-default cost atoms can always run; prefer the
        # ones with more variables already bound (cheaper joins).
        unbound = atom_vars - bound
        return (2 + min(len(unbound), 5), unbound)
    if isinstance(sg, BuiltinSubgoal):
        lhs_vars = expr_variable_set(sg.lhs)
        rhs_vars = expr_variable_set(sg.rhs)
        all_vars = lhs_vars | rhs_vars
        if all_vars <= bound:
            return (0, set())
        if sg.op == "=":
            if (
                isinstance(sg.lhs, Variable)
                and sg.lhs not in bound
                and rhs_vars <= bound
            ):
                return (0, {sg.lhs})
            if (
                isinstance(sg.rhs, Variable)
                and sg.rhs not in bound
                and lhs_vars <= bound
            ):
                return (0, {sg.rhs})
        return None
    if isinstance(sg, AggregateSubgoal):
        grouping = rule.grouping_variables(sg)
        newly = (
            {sg.result}
            if isinstance(sg.result, Variable) and sg.result not in bound
            else set()
        )
        if grouping <= bound:
            return (4, newly)
        if sg.restricted:
            # An =r subgoal can *generate* grouping bindings by
            # enumerating the groups of its inner conjunction — that is
            # how Definition 2.5 limits its grouping variables.  Run it
            # late so other subgoals narrow the groups first.
            return (6, newly | (grouping - bound))
        return None
    raise TypeError(f"unknown subgoal type {type(sg).__name__}")


def schedule(
    rule: Rule, program: Program, pre_bound: frozenset = frozenset()
) -> List[Subgoal]:
    """A static evaluation order for the body (see module docstring)."""
    remaining = list(rule.body)
    ordered: List[Subgoal] = []
    bound: set = set(pre_bound)

    while remaining:
        best_index: Optional[int] = None
        best_priority = 99
        best_newly: set = set()
        for idx, sg in enumerate(remaining):
            ready = subgoal_readiness(sg, rule, program, bound)
            if ready is None:
                continue
            priority, newly = ready
            if priority < best_priority:
                best_priority, best_index, best_newly = priority, idx, newly
        if best_index is None:
            raise SafetyError(
                f"cannot schedule body of rule {rule}: remaining subgoals "
                f"{[str(s) for s in remaining]} with bound={sorted(v.name for v in bound)}"
            )
        ordered.append(remaining.pop(best_index))
        bound |= best_newly
    return ordered


# ---------------------------------------------------------------------------
# Subgoal evaluation
# ---------------------------------------------------------------------------


def _term_value(term, bindings: Bindings):
    """Raw value of a bound term, or None when the variable is free."""
    if isinstance(term, Constant):
        return term.value
    return bindings.get(term)


def match_atom(
    atom: Atom, ctx: EvalContext, bindings: Bindings, *, mode: str = "positive"
) -> Iterator[Bindings]:
    """Extend ``bindings`` over every matching row of ``atom``'s relation."""
    decl = ctx.program.decl(atom.predicate)
    rel = ctx.relation(atom.predicate, mode=mode)

    if decl.has_default:
        yield from _match_default_atom(atom, decl, rel, bindings)
        return

    pattern = [_term_value(arg, bindings) for arg in atom.args]
    bound_positions = tuple(p for p, v in enumerate(pattern) if v is not None)
    bound_values = tuple(pattern[p] for p in bound_positions)
    free = [
        (p, arg)
        for p, arg in enumerate(atom.args)
        if pattern[p] is None
    ]
    for row in ctx.rows_matching(
        atom.predicate, bound_positions, bound_values, mode=mode
    ):
        extended = dict(bindings)
        ok = True
        for p, arg in free:
            assert isinstance(arg, Variable)
            value = row[p]
            existing = extended.get(arg)
            if existing is None:
                extended[arg] = value
            elif existing != value:
                ok = False
                break
        if ok:
            yield extended


def _match_default_atom(
    atom: Atom, decl, rel: Relation, bindings: Bindings
) -> Iterator[Bindings]:
    """A default-value atom with its key bound reads core-or-default."""
    key_terms = atom.args[: decl.key_arity]
    key = tuple(_term_value(t, bindings) for t in key_terms)
    if any(v is None for v in key):
        raise SafetyError(
            f"default-value atom {atom} evaluated with unbound key "
            f"(range restriction violated)"
        )
    value = rel.cost_of(key)
    assert value is not None  # default predicates always have a value
    cost_term = atom.args[-1]
    bound = _term_value(cost_term, bindings)
    if bound is None:
        assert isinstance(cost_term, Variable)
        extended = dict(bindings)
        extended[cost_term] = value
        yield extended
    elif bound == value:
        yield dict(bindings)


def _check_negated(atom: Atom, ctx: EvalContext, bindings: Bindings) -> bool:
    """Ground negation: satisfied iff the ground atom is absent (read from
    the negation oracle when the context has one)."""
    decl = ctx.program.decl(atom.predicate)
    rel = ctx.relation(atom.predicate, mode="negated")
    values = tuple(_term_value(a, bindings) for a in atom.args)
    if any(v is None for v in values):
        raise SafetyError(f"negated atom {atom} evaluated with unbound variables")
    if decl.is_cost_predicate:
        stored = rel.cost_of(values[:-1])
        return stored != values[-1]
    return values not in rel.tuples


def _eval_builtin(
    sg: BuiltinSubgoal, bindings: Bindings
) -> Iterator[Bindings]:
    lhs_free = isinstance(sg.lhs, Variable) and sg.lhs not in bindings
    rhs_free = isinstance(sg.rhs, Variable) and sg.rhs not in bindings
    try:
        if sg.op == "=" and (lhs_free or rhs_free):
            if lhs_free and rhs_free:
                raise SafetyError(f"built-in {sg} with both sides unbound")
            if lhs_free:
                value = evaluate_expr(sg.rhs, bindings)
                extended = dict(bindings)
                extended[sg.lhs] = value  # type: ignore[index]
            else:
                value = evaluate_expr(sg.lhs, bindings)
                extended = dict(bindings)
                extended[sg.rhs] = value  # type: ignore[index]
            yield extended
            return
        left = evaluate_expr(sg.lhs, bindings)
        right = evaluate_expr(sg.rhs, bindings)
    except ZeroDivisionError:
        return
    try:
        satisfied = _compare(sg.op, left, right)
    except TypeError:
        satisfied = False  # incomparable values never satisfy a built-in
    if satisfied:
        yield dict(bindings)


def _compare(op: str, left: Any, right: Any) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def solve_conjunction(
    conjuncts: Sequence[Atom], ctx: EvalContext, bindings: Bindings
) -> List[Bindings]:
    """All solutions of a conjunction of atoms (aggregate interiors).

    Conjuncts are ordered greedily: atoms whose default-value keys are
    bound go first when possible.
    """
    solutions = [dict(bindings)]
    remaining = list(conjuncts)
    while remaining:
        progressed = False
        for idx, conjunct in enumerate(remaining):
            decl = ctx.program.decl(conjunct.predicate)
            if decl.has_default:
                key_vars = {
                    a
                    for a in conjunct.args[: decl.key_arity]
                    if isinstance(a, Variable)
                }
                bound_now = set(solutions[0]) if solutions else set()
                if solutions and not key_vars <= bound_now:
                    continue
            chosen = remaining.pop(idx)
            new_solutions: List[Bindings] = []
            for b in solutions:
                new_solutions.extend(match_atom(chosen, ctx, b, mode="aggregate"))
            solutions = new_solutions
            progressed = True
            break
        if not progressed:
            raise SafetyError(
                f"cannot schedule aggregate conjuncts "
                f"{[str(c) for c in remaining]}"
            )
        if not solutions:
            return []
    return solutions


def _project_multiset(
    sg: AggregateSubgoal, solutions: Sequence[Bindings]
) -> FrozenMultiset:
    """SQL-style projection of the inner solutions onto the multiset
    variable (duplicates retained); implicit boolean aggregation counts
    each solution as 'true'."""
    if sg.multiset_var is not None:
        return FrozenMultiset(
            solution[sg.multiset_var] for solution in solutions
        )
    return FrozenMultiset([1] * len(solutions))


def _eval_aggregate(
    sg: AggregateSubgoal,
    rule: Rule,
    ctx: EvalContext,
    bindings: Bindings,
) -> Iterator[Bindings]:
    function = ctx.program.aggregate_function(sg.function)
    grouping = rule.grouping_variables(sg)
    inner_bindings: Bindings = {
        v: bindings[v] for v in grouping if v in bindings
    }
    free_grouping = sorted(
        (v for v in grouping if v not in bindings), key=lambda v: v.name
    )
    if free_grouping and not sg.restricted:
        raise SafetyError(
            f"'='-form aggregate {sg} evaluated with unbound grouping "
            f"variables {', '.join(v.name for v in free_grouping)} "
            f"(range restriction violated)"
        )
    solutions = solve_conjunction(sg.conjuncts, ctx, inner_bindings)

    if free_grouping:
        groups: Dict[Tuple[Any, ...], List[Bindings]] = {}
        for solution in solutions:
            key = tuple(solution[v] for v in free_grouping)
            groups.setdefault(key, []).append(solution)
        for key, group_solutions in groups.items():
            value = function(_project_multiset(sg, group_solutions))
            bound = _term_value(sg.result, bindings)
            if bound is not None and bound != value:
                continue
            extended = dict(bindings)
            extended.update(zip(free_grouping, key))
            if bound is None:
                assert isinstance(sg.result, Variable)
                extended[sg.result] = value
            yield extended
        return

    if sg.restricted and not solutions:
        return
    try:
        value = function(_project_multiset(sg, solutions))
    except EmptyAggregateError:
        return
    bound = _term_value(sg.result, bindings)
    if bound is None:
        assert isinstance(sg.result, Variable)
        extended = dict(bindings)
        extended[sg.result] = value
        yield extended
    elif bound == value:
        yield dict(bindings)


# ---------------------------------------------------------------------------
# Whole-body evaluation
# ---------------------------------------------------------------------------


def evaluate_body(
    rule: Rule,
    ctx: EvalContext,
    *,
    initial: Optional[Bindings] = None,
    order: Optional[List[Subgoal]] = None,
) -> Iterator[Bindings]:
    """Enumerate every satisfying assignment of ``rule``'s body."""
    pre_bound = frozenset(initial) if initial else frozenset()
    subgoals = order if order is not None else schedule(rule, ctx.program, pre_bound)
    current: List[Bindings] = [dict(initial) if initial else {}]
    for sg in subgoals:
        next_bindings: List[Bindings] = []
        if isinstance(sg, AtomSubgoal):
            if sg.negated:
                next_bindings = [
                    b for b in current if _check_negated(sg.atom, ctx, b)
                ]
            else:
                for b in current:
                    next_bindings.extend(match_atom(sg.atom, ctx, b))
        elif isinstance(sg, BuiltinSubgoal):
            for b in current:
                next_bindings.extend(_eval_builtin(sg, b))
        elif isinstance(sg, AggregateSubgoal):
            for b in current:
                next_bindings.extend(_eval_aggregate(sg, rule, ctx, b))
        else:  # pragma: no cover - exhaustive
            raise TypeError(f"unknown subgoal type {type(sg).__name__}")
        current = next_bindings
        if not current:
            return
    yield from current


def ground_head(rule: Rule, bindings: Bindings) -> Tuple[str, Key]:
    """(predicate, full argument tuple) of the head under ``bindings``."""
    values = []
    for arg in rule.head.args:
        value = _term_value(arg, bindings)
        if value is None:
            raise SafetyError(
                f"head variable {arg} of {rule} unbound after body evaluation"
            )
        values.append(value)
    return rule.head.predicate, tuple(values)
