"""The immediate consequence operator ``T_P(J, I)`` (Definition 3.7).

``T_P(J, I)`` is one *simultaneous* application of every rule of the
component to the current CDB interpretation ``J`` and the fixed
lower-component interpretation ``I``, joined with ``J_∅`` (the
interpretation giving default values to all instances of default-value
cost predicates).  ``J_∅``'s contribution is implicit here: cores never
store default values, and lookups fall back to the default
(:class:`~repro.engine.interpretation.Relation`).

The runtime cost-consistency check lives here: two rule instances deriving
atoms that differ only in the cost argument raise
:class:`~repro.datalog.errors.CostConsistencyError`, per the paper's
standing assumption that components are cost consistent.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional

from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.engine.exec import run_rule
from repro.engine.grounding import EvalContext
from repro.engine.interpretation import Interpretation
from repro.engine.supervisor import NULL_SUPERVISOR, Supervisor
from repro.obs.tracer import NULL_TRACER, Tracer


def apply_tp(
    program: Program,
    cdb: FrozenSet[str],
    j: Interpretation,
    i: Interpretation,
    *,
    rules: Optional[List[Rule]] = None,
    strict: bool = True,
    negation_source: Optional[Interpretation] = None,
    aggregate_source: Optional[Interpretation] = None,
    plan: str = "smart",
    storage: str = "boxed",
    tracer: Tracer = NULL_TRACER,
    supervisor: Supervisor = NULL_SUPERVISOR,
    scc: Optional[int] = None,
) -> Interpretation:
    """One application of ``T_P`` for the component with head set ``cdb``.

    ``rules`` defaults to every program rule whose head predicate is in
    ``cdb``.  With ``strict=False`` conflicting cost derivations are
    joined instead of raising (used by the semi-naive evaluator, which is
    only sound for monotonic programs anyway).  ``negation_source`` /
    ``aggregate_source`` fix those subgoal kinds to an oracle
    interpretation (reducts, Sections 5.3–5.5).  Rule bodies run through
    the compiled execution layer (:mod:`repro.engine.exec`); ``plan``
    selects the join-ordering mode (``"smart"`` | ``"off"``) and
    ``storage`` the representation of the staging interpretation
    (``"boxed"`` | ``"columnar"``, docs/STORAGE.md) — evaluators whose
    iterate *is* the staging output thread their own mode through.

    An active ``supervisor`` is polled between rules (a rule-firing
    boundary): the staging interpretation ``out`` is discarded on
    interrupt, so ``j`` and ``i`` are never observed half-updated.
    """
    if rules is None:
        rules = [r for r in program.rules if r.head.predicate in cdb]
    ctx = EvalContext(
        program,
        cdb,
        j,
        i,
        negation_source=negation_source,
        aggregate_source=aggregate_source,
        tracer=tracer,
    )
    out = Interpretation(program.declarations, storage=storage)
    check = supervisor.active
    for rule in rules:
        if check:
            supervisor.poll(scc)
        for predicate, args in run_rule(rule, ctx, mode=plan):
            rel = out.relation(predicate)
            if rel.is_cost:
                assert rel.decl.lattice is not None
                rel.decl.lattice.validate(args[-1])
                rel.set_cost(args[:-1], args[-1], strict=strict)
            else:
                rel.add_tuple(args)
    return out
