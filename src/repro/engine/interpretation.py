"""Aggregate Herbrand interpretations (Definition 3.3, Theorem 3.1).

An interpretation stores, per predicate:

* ordinary predicates — a set of key tuples;
* cost predicates — a dict from key tuple (the non-cost arguments) to a
  cost value, which makes the functional dependency of Definition 2.3
  structural;
* default-value cost predicates — only the *core* (Section 2.3.3): entries
  whose value differs from the lattice bottom; lookups of absent keys read
  the default.

On these representations the paper's order ``⊑`` and the lub/glb of
Theorem 3.1 are pointwise lattice operations, implemented here, making the
space of interpretations a complete lattice as the theorem states.

Values are raw Python objects (floats, ints, frozensets, ...); keys are
tuples of raw constants.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.datalog.errors import CostConsistencyError, ProgramError
from repro.datalog.program import PredicateDecl
from repro.testing import faults as _faults

Key = Tuple[Any, ...]

#: Storage modes: "boxed" = the dict/set representation below;
#: "columnar" = typed column-major arrays behind the same Relation API
#: (:mod:`repro.engine.columnar`), with boxed per-column fallback for
#: values the typed columns cannot hold.  See docs/STORAGE.md.
STORAGE_MODES = ("boxed", "columnar")


def _check_storage_mode(storage: str) -> str:
    if storage not in STORAGE_MODES:
        raise ValueError(
            f"unknown storage mode {storage!r}; expected one of {STORAGE_MODES}"
        )
    return storage


def make_relation(decl: PredicateDecl, storage: str = "boxed") -> "Relation":
    """An empty relation for ``decl`` under the given storage mode."""
    if _check_storage_mode(storage) == "columnar":
        from repro.engine.columnar import ColumnarRelation

        return ColumnarRelation.empty(decl)
    return Relation.empty(decl)


@dataclass
class IndexStats:
    """Counters for the persistent index layer.

    ``hits``/``misses`` count indexed lookups served by an existing index
    versus lookups that had to build one first; ``builds`` counts index
    constructions, ``invalidations`` whole-index drops forced by bulk or
    in-place mutations, and ``scans`` full-relation row materialisations.

    Ownership is *solve-scoped*: every solve binds its own instance (the
    tracer's, see :mod:`repro.obs.tracer`) via :func:`use_index_stats`,
    so concurrent solves no longer share one process-global counter.
    :data:`INDEX_STATS` remains as the ambient fallback for relation
    operations outside any solve.
    """

    hits: int = 0
    misses: int = 0
    builds: int = 0
    invalidations: int = 0
    scans: int = 0

    def reset(self) -> None:
        self.hits = self.misses = self.builds = 0
        self.invalidations = self.scans = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "builds": self.builds,
            "invalidations": self.invalidations,
            "scans": self.scans,
        }


#: Deprecated process-wide fallback.  Solves bind their own stats object
#: (``use_index_stats``); this ambient instance only collects operations
#: performed outside a solve context, and is kept so existing imports of
#: the old global keep working.
INDEX_STATS = IndexStats()

#: The stats object charged for index work on the current (thread/task)
#: context; defaults to the ambient :data:`INDEX_STATS`.
_ACTIVE_STATS: ContextVar[IndexStats] = ContextVar("repro_index_stats")


def active_index_stats() -> IndexStats:
    """The :class:`IndexStats` charged for index work right now."""
    return _ACTIVE_STATS.get(INDEX_STATS)


@contextmanager
def use_index_stats(stats: IndexStats) -> Iterator[IndexStats]:
    """Bind ``stats`` as the active counter object for this context.

    Context variables are per-thread (and per-task), so two concurrent
    solves each see only their own counters.
    """
    token = _ACTIVE_STATS.set(stats)
    try:
        yield stats
    finally:
        _ACTIVE_STATS.reset(token)


@dataclass
class Relation:
    """The extension of one predicate inside an interpretation.

    Beyond the raw ``tuples``/``costs`` containers, a relation owns its
    *persistent incremental indexes*: hash indexes keyed by argument
    positions that are built lazily on first lookup and then maintained in
    place by :meth:`add_tuple`/:meth:`set_cost`.  They survive across
    fixpoint rounds — a semi-naive round touches only its delta instead of
    re-hashing every relation (see docs/PERFORMANCE.md).  Code that
    mutates ``tuples``/``costs`` directly must call
    :meth:`invalidate_indexes` afterwards (or use the mutator methods).
    """

    decl: PredicateDecl
    tuples: Set[Key]  # ordinary predicates
    costs: Dict[Key, Any]  # cost predicates (core only for defaults)
    #: Bumped on every mutation; validates the materialized-row cache.
    generation: int = field(default=0, compare=False, repr=False)
    #: position tuple -> bound-value tuple -> full rows.
    _indexes: Dict[Tuple[int, ...], Dict[Key, List[Key]]] = field(
        default_factory=dict, compare=False, repr=False
    )
    _rows_cache: Optional[List[Key]] = field(
        default=None, compare=False, repr=False
    )
    _rows_cache_gen: int = field(default=-1, compare=False, repr=False)

    @classmethod
    def empty(cls, decl: PredicateDecl) -> "Relation":
        return cls(decl=decl, tuples=set(), costs={})

    def copy(self, warm: bool = False) -> "Relation":
        """A detached copy.

        By default indexes are not copied: the copy starts cold and
        re-indexes on demand (copies are usually mutated immediately,
        e.g. by join).  ``warm=True`` additionally clones the live
        indexes and row cache — the mutator methods keep maintaining
        them incrementally, so snapshot points that previously
        re-indexed from cold (``Interpretation.join``'s accumulation
        across components) skip the rebuild.
        """
        out = Relation(self.decl, set(self.tuples), dict(self.costs))
        if warm:
            out._adopt_hot_state(self)
        return out

    def _adopt_hot_state(self, source: "Relation") -> None:
        """Clone ``source``'s live indexes and row cache (the copies hold
        the same logical rows, so the derived structures carry over)."""
        self.generation = source.generation
        self._indexes = {
            positions: {key: list(bucket) for key, bucket in index.items()}
            for positions, index in source._indexes.items()
        }
        if source._rows_cache is not None:
            self._rows_cache = list(source._rows_cache)
            self._rows_cache_gen = source._rows_cache_gen

    @property
    def is_cost(self) -> bool:
        return self.decl.is_cost_predicate

    def __len__(self) -> int:
        return len(self.costs) if self.is_cost else len(self.tuples)

    # -- mutation ------------------------------------------------------------
    #
    # Exception safety (apply-or-rollback): the raw ``tuples``/``costs``
    # containers are the source of truth and are always left in a valid
    # state — single-key container writes cannot fail halfway.  The
    # derived structures (incremental indexes, row cache) *can* be left
    # half-updated if index maintenance raises (an injected fault, a
    # pathological __eq__/__hash__ on user values), so every mutator
    # drops them via ``invalidate_indexes()`` before re-raising: the
    # logical mutation stays applied and the indexes rebuild lazily from
    # the containers — consistent by reconstruction, never torn.

    def add_tuple(self, key: Key) -> bool:
        """Add an ordinary tuple; True if new."""
        if key in self.tuples:
            return False
        self.tuples.add(key)
        try:
            self._on_insert(key)
        except BaseException:
            self.invalidate_indexes()
            raise
        return True

    def set_cost(self, key: Key, value: Any, *, strict: bool = True) -> bool:
        """Record ``key ↦ value``; True if the stored value changed.

        ``strict`` enforces the functional dependency: a different existing
        value raises :class:`CostConsistencyError` (Definition 2.6's runtime
        face).  Default-value predicates drop bottom entries from the core.
        """
        lattice = self.decl.lattice
        assert lattice is not None
        if self.decl.has_default and value == lattice.bottom:
            # The default is implicit; storing it would bloat the core.
            if strict and key in self.costs and self.costs[key] != value:
                raise CostConsistencyError(
                    f"{self.decl.name}{key}: derived both "
                    f"{self.costs[key]!r} and default {value!r}"
                )
            return False
        existing = self.costs.get(key)
        if existing is None:
            self.costs[key] = value
            try:
                self._on_insert(key + (value,))
            except BaseException:
                self.invalidate_indexes()
                raise
            return True
        if existing == value:
            return False
        if strict:
            raise CostConsistencyError(
                f"{self.decl.name}{key}: derived both {existing!r} and "
                f"{value!r} in one T_P application"
            )
        # The lattice lub runs *before* any mutation: a raising join
        # (user-supplied lattice) leaves the relation untouched.
        joined = lattice.join(existing, value)
        if joined == existing:
            return False
        self.costs[key] = joined
        try:
            self._on_replace(key + (existing,), key + (joined,))
        except BaseException:
            self.invalidate_indexes()
            raise
        return True

    def merge_tuples(self, keys: Set[Key]) -> None:
        """Bulk-union ordinary tuples; invalidates live indexes.

        ``keys`` is materialized first so an iterable that raises
        mid-iteration mutates nothing.
        """
        pending = keys if isinstance(keys, (set, frozenset)) else set(keys)
        try:
            self.tuples |= pending
        finally:
            self.invalidate_indexes()

    def invalidate_indexes(self) -> None:
        """Drop every live index and row cache (after direct mutation)."""
        if self._indexes or self._rows_cache is not None:
            active_index_stats().invalidations += 1
        self._indexes.clear()
        self._rows_cache = None
        self.generation += 1

    # -- index maintenance ------------------------------------------------------

    def _on_insert(self, row: Key) -> None:
        if _faults._ACTIVE is not None:  # fault-injection seam
            _faults.trip("index_update", self.decl.name, self)
        gen = self.generation
        self.generation = gen + 1
        if self._rows_cache is not None and self._rows_cache_gen == gen:
            self._rows_cache.append(row)
            self._rows_cache_gen = gen + 1
        for positions, index in self._indexes.items():
            bucket_key = tuple(row[p] for p in positions)
            index.setdefault(bucket_key, []).append(row)

    def _on_replace(self, old_row: Key, new_row: Key) -> None:
        if _faults._ACTIVE is not None:  # fault-injection seam
            _faults.trip("index_update", self.decl.name, self)
        # Cost value changed in place: the row cache position is unknown,
        # so it is invalidated (rebuilt at most once per generation).
        self.generation += 1
        self._rows_cache = None
        for positions, index in self._indexes.items():
            old_key = tuple(old_row[p] for p in positions)
            bucket = index.get(old_key)
            if bucket is not None:
                try:
                    bucket.remove(old_row)
                except ValueError:  # pragma: no cover - defensive
                    pass
            new_key = tuple(new_row[p] for p in positions)
            index.setdefault(new_key, []).append(new_row)

    # -- indexed access ----------------------------------------------------------

    def rows_list(self) -> List[Key]:
        """The materialized full-row list, cached per generation."""
        if self._rows_cache is None or self._rows_cache_gen != self.generation:
            active_index_stats().scans += 1
            self._rows_cache = list(self.rows())
            self._rows_cache_gen = self.generation
        return self._rows_cache

    def index_for(self, positions: Tuple[int, ...]) -> Dict[Key, List[Key]]:
        """The hash index on ``positions``, built on first use and then
        maintained incrementally by the mutator methods."""
        index = self._indexes.get(positions)
        if index is None:
            active_index_stats().builds += 1
            index = {}
            for row in self.rows():
                bucket_key = tuple(row[p] for p in positions)
                index.setdefault(bucket_key, []).append(row)
            self._indexes[positions] = index
        return index

    def lookup(
        self, positions: Tuple[int, ...], values: Key
    ) -> Sequence[Key]:
        """Rows whose ``positions`` equal ``values`` (indexed)."""
        index = self._indexes.get(positions)
        if index is None:
            active_index_stats().misses += 1
            index = self.index_for(positions)
        else:
            active_index_stats().hits += 1
        return index.get(values, ())

    # -- queries ---------------------------------------------------------------

    def cost_of(self, key: Key) -> Optional[Any]:
        """The cost of ``key``: stored value, the default for default-value
        predicates, or None when the atom is absent."""
        value = self.costs.get(key)
        if value is not None:
            return value
        if self.decl.has_default:
            return self.decl.default_value
        return None

    def has_tuple(self, key: Key) -> bool:
        return key in self.tuples

    def rows(self) -> Iterator[Tuple[Any, ...]]:
        """Full rows (key + cost column for cost predicates).

        For default-value predicates this iterates the *core* only; the
        engine must never enumerate a default-value predicate unbound
        (range-restriction forbids it).
        """
        if self.is_cost:
            for key, value in self.costs.items():
                yield key + (value,)
        else:
            yield from self.tuples


def delta_counts(
    old: "Interpretation", new: "Interpretation"
) -> Tuple[int, int]:
    """``(new atoms, changed-cost atoms)`` of ``new`` relative to ``old``.

    A *new* atom is a key absent from ``old``; a *changed* one is a cost
    key whose stored value differs (a lattice merge).  Telemetry only —
    the evaluators never act on these counts.
    """
    new_atoms = 0
    changed = 0
    for name, rel in new.relations.items():
        old_rel = old.relations.get(name)
        if rel.is_cost:
            old_costs = old_rel.costs if old_rel is not None else {}
            for key, value in rel.costs.items():
                existing = old_costs.get(key)
                if existing is None:
                    new_atoms += 1
                elif existing != value:
                    changed += 1
        else:
            old_tuples = old_rel.tuples if old_rel is not None else set()
            new_atoms += len(rel.tuples - old_tuples)
    return new_atoms, changed


class Interpretation:
    """A (finite-core) aggregate Herbrand interpretation.

    ``storage`` selects the per-relation representation: ``"boxed"``
    (dict/set, the default) or ``"columnar"`` (typed column-major
    arrays, :mod:`repro.engine.columnar`).  The two are bit-identical
    behind the Relation API; see docs/STORAGE.md.
    """

    def __init__(
        self,
        declarations: Mapping[str, PredicateDecl],
        *,
        storage: str = "boxed",
    ) -> None:
        self.storage = _check_storage_mode(storage)
        self.declarations = dict(declarations)
        self.relations: Dict[str, Relation] = {
            name: make_relation(decl, storage)
            for name, decl in self.declarations.items()
        }

    # -- construction ------------------------------------------------------------

    def copy(self, warm: bool = False) -> "Interpretation":
        out = Interpretation(self.declarations, storage=self.storage)
        out.relations = {
            name: rel.copy(warm=warm) for name, rel in self.relations.items()
        }
        return out

    def with_storage(self, storage: str) -> "Interpretation":
        """This interpretation's contents under ``storage``.

        Returns a plain copy when the mode already matches; otherwise a
        converted copy (``self`` is unchanged either way).
        """
        if _check_storage_mode(storage) == self.storage:
            return self.copy()
        out = Interpretation(self.declarations, storage=storage)
        for name, rel in self.relations.items():
            target = out.relation(name)
            if rel.is_cost:
                for key, value in rel.costs.items():
                    target.set_cost(key, value, strict=False)
            else:
                target.merge_tuples(rel.tuples)
        return out

    def relation(self, predicate: str) -> Relation:
        try:
            return self.relations[predicate]
        except KeyError:
            raise ProgramError(f"unknown predicate {predicate}") from None

    def add_fact(self, predicate: str, *args: Any, strict: bool = True) -> bool:
        """Insert a ground fact given its full argument list."""
        rel = self.relation(predicate)
        if rel.decl.arity != len(args):
            raise ProgramError(
                f"{predicate} expects {rel.decl.arity} arguments, got {len(args)}"
            )
        if rel.is_cost:
            *key, value = args
            lattice = rel.decl.lattice
            assert lattice is not None
            lattice.validate(value)
            return rel.set_cost(tuple(key), value, strict=strict)
        return rel.add_tuple(tuple(args))

    # -- the lattice of Theorem 3.1 -------------------------------------------------

    def leq(self, other: "Interpretation") -> bool:
        """``self ⊑ other`` (Definition 3.3)."""
        for name, rel in self.relations.items():
            other_rel = other.relation(name)
            if rel.is_cost:
                lattice = rel.decl.lattice
                assert lattice is not None
                for key, value in rel.costs.items():
                    other_value = other_rel.cost_of(key)
                    if other_value is None or not lattice.leq(value, other_value):
                        return False
            else:
                if not rel.tuples <= other_rel.tuples:
                    return False
        return True

    def join(self, other: "Interpretation") -> "Interpretation":
        """``self ⊔ other`` per Theorem 3.1's construction.

        Routed through the relation mutators: ``set_cost(strict=False)``
        *is* the pointwise lattice lub, and the copy carries warm
        indexes — the mutators maintain them incrementally, so a state
        accumulated by repeated joins (the solver's per-component loop)
        no longer re-indexes from cold.
        """
        out = self.copy(warm=True)
        for name, rel in other.relations.items():
            target = out.relation(name)
            if rel.is_cost:
                for key, value in rel.costs.items():
                    target.set_cost(key, value, strict=False)
            elif target._indexes:
                for key in rel.tuples:
                    target.add_tuple(key)
            else:
                target.merge_tuples(rel.tuples)
        return out

    def meet(self, other: "Interpretation") -> "Interpretation":
        """``self ⊓ other`` per Theorem 3.1's construction.

        For a non-default cost predicate a key must be present on both
        sides ("if *every* S_i has a cost atom ..."); for default-value
        predicates an absent key reads as bottom, so the meet of a core
        entry with an absent one is bottom and leaves the core.
        """
        out = Interpretation(self.declarations, storage=self.storage)
        for name, rel in self.relations.items():
            other_rel = other.relation(name)
            target = out.relation(name)
            if rel.is_cost:
                lattice = rel.decl.lattice
                assert lattice is not None
                if rel.decl.has_default:
                    for key, value in rel.costs.items():
                        other_value = other_rel.cost_of(key)
                        assert other_value is not None
                        met = lattice.meet(value, other_value)
                        if met != lattice.bottom:
                            target.set_cost(key, met, strict=False)
                else:
                    for key, value in rel.costs.items():
                        if key in other_rel.costs:
                            target.set_cost(
                                key,
                                lattice.meet(value, other_rel.costs[key]),
                                strict=False,
                            )
            else:
                target.merge_tuples(rel.tuples & other_rel.tuples)
        return out

    # -- comparisons & reporting -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Interpretation):
            return NotImplemented
        for name, rel in self.relations.items():
            other_rel = other.relations.get(name)
            if other_rel is None:
                if len(rel):
                    return False
                continue
            if rel.is_cost:
                if rel.costs != other_rel.costs:
                    return False
            else:
                if rel.tuples != other_rel.tuples:
                    return False
        for name, rel in other.relations.items():
            if name not in self.relations and len(rel):
                return False
        return True

    def __hash__(self):  # pragma: no cover - interpretations are mutable
        raise TypeError("interpretations are mutable and unhashable")

    def fingerprint(self) -> int:
        """A hash of the current contents (for oscillation detection)."""
        parts: List[Tuple[Any, ...]] = []
        for name in sorted(self.relations):
            rel = self.relations[name]
            if rel.is_cost:
                parts.append(
                    (name,) + tuple(sorted(rel.costs.items(), key=repr))
                )
            else:
                parts.append((name,) + tuple(sorted(rel.tuples, key=repr)))
        return hash(tuple(parts))

    def total_size(self) -> int:
        return sum(len(rel) for rel in self.relations.values())

    def __getitem__(self, predicate: str):
        """Convenience read access: a dict for cost predicates, a frozenset
        for ordinary predicates."""
        rel = self.relation(predicate)
        if rel.is_cost:
            return dict(rel.costs)
        return frozenset(rel.tuples)

    def __str__(self) -> str:
        lines = []
        for name in sorted(self.relations):
            rel = self.relations[name]
            if not len(rel):
                continue
            for row in sorted(rel.rows(), key=repr):
                rendered = ", ".join(map(repr, row))
                lines.append(f"{name}({rendered})")
        return "\n".join(lines) or "(empty)"
