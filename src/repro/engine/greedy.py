"""Greedy (priority-queue) evaluation for extremal monotonic components.

Section 7 points at Ganguly et al.'s greedy technique for min/max
programs: on the shortest-path program with non-negative arc weights it is
the generalisation of Dijkstra's algorithm.  This evaluator implements the
idea for the engine at large:

* candidate cost atoms live in a priority queue ordered by the *numeric*
  cost (ascending for min-oriented ``reals_ge`` components, descending
  for max-oriented ones);
* popping *settles* an atom: once settled, a key's value is final and new
  candidates for it are discarded;
* settling an atom triggers delta re-derivation (the semi-naive seed
  machinery) to push its consequences.

Soundness needs the Dijkstra invariant: a rule firing on settled atoms
may only produce candidates that are no better (numerically no smaller,
for min) than the settled costs it consumed — e.g. non-negative arc
weights.  The paper itself notes greedy methods do not extend to all
monotonic programs (Section 7); :func:`greedy_applicable` gates the
syntactic shape, and the weight condition is the caller's promise
(``assume_invariant=True``), cross-checked against the naive engine in
the test suite.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, List, Optional, Tuple

from repro.analysis.dependencies import Component
from repro.datalog.errors import ReproError
from repro.datalog.program import Program
from repro.engine.exec import run_rule
from repro.engine.grounding import EvalContext
from repro.engine.interpretation import Interpretation
from repro.engine.naive import FixpointResult
from repro.engine.seminaive import DeltaRows, _delta_seeds
from repro.engine.supervisor import (
    NULL_SUPERVISOR,
    SolveInterrupt,
    Supervisor,
)
from repro.engine.tp import apply_tp
from repro.obs.tracer import NULL_TRACER, Tracer


def greedy_applicable(program: Program, component: Component) -> Optional[int]:
    """The numeric direction (+1 max-oriented, -1 min-oriented) if the
    component fits the greedy evaluator, else None.

    Requirements: every CDB predicate is a cost predicate over a numeric
    chain, all with the same direction, and none carries a default value.
    """
    direction: Optional[int] = None
    for predicate in component.cdb:
        decl = program.decl(predicate)
        if not decl.is_cost_predicate or decl.has_default:
            return None
        assert decl.lattice is not None
        d = decl.lattice.numeric_direction
        if d is None:
            return None
        if direction is None:
            direction = d
        elif direction != d:
            return None
    return direction


def greedy_fixpoint(
    program: Program,
    component: Component,
    i: Interpretation,
    *,
    assume_invariant: bool = False,
    max_pops: int = 10_000_000,
    plan: str = "smart",
    storage: str = "boxed",
    tracer: Tracer = NULL_TRACER,
    scc: int = 0,
    supervisor: Supervisor = NULL_SUPERVISOR,
    initial: Optional[Interpretation] = None,
) -> FixpointResult:
    """Priority-queue fixpoint of one extremal component.

    With an enabled ``tracer`` each *settled* atom emits one
    ``iteration`` event (the greedy analogue of a fixpoint round:
    exactly one atom becomes final per settle).

    An active ``supervisor`` is polled per pop and consulted per settle;
    an interrupt escapes with the settled-so-far state attached — under
    the Dijkstra invariant every settled value is *final*, so greedy
    partial results are exact on their domain, not just lower bounds.
    ``initial`` resumes from a checkpoint: its atoms are pre-settled and
    the heap is re-seeded by one full ``T_P`` application over them.
    """
    direction = greedy_applicable(program, component)
    if direction is None:
        raise ReproError(
            f"greedy evaluation does not apply to {component}; use the "
            f"naive or semi-naive evaluator"
        )
    if not assume_invariant:
        raise ReproError(
            "greedy evaluation is only sound under the Dijkstra invariant "
            "(e.g. non-negative arc weights); pass assume_invariant=True "
            "to acknowledge it"
        )
    cdb = component.cdb
    rules = list(component.rules)
    j = Interpretation(program.declarations, storage=storage)
    if initial is not None:
        # Checkpointed greedy atoms were settled, hence final: restore
        # them as settled so re-derivation cannot revise them.
        for name, rel in initial.relations.items():
            if name not in cdb or not len(rel):
                continue
            target = j.relation(name)
            for key, value in rel.costs.items():
                target.set_cost(key, value, strict=False)
    ctx = EvalContext(program, cdb, j, i, tracer=tracer)
    track = tracer.enabled
    supervise = supervisor.active

    counter = itertools.count()
    heap: List[Tuple[float, int, str, Tuple[Any, ...]]] = []

    def push(predicate: str, args: Tuple[Any, ...]) -> None:
        # direction -1 (reals_ge / min): numerically smaller is ⊑-greater
        # and must settle first, so the heap key is the raw cost; for
        # max-oriented components the key is negated.
        cost = args[-1]
        heap_key = cost if direction == -1 else -cost
        heapq.heappush(heap, (heap_key, next(counter), predicate, args))

    settled_count = 0
    try:
        # Seed: one full application against J (empty, or the restored
        # settled atoms when resuming — their consequences re-derive here,
        # and already-settled keys are skipped).
        seed = apply_tp(
            program,
            cdb,
            j,
            i,
            rules=rules,
            strict=False,
            plan=plan,
            tracer=tracer,
            supervisor=supervisor,
            scc=scc,
        )
        for name, rel in seed.relations.items():
            settled = j.relation(name).costs
            for key, value in rel.costs.items():
                if key in settled:
                    continue
                push(name, key + (value,))

        pops = 0
        while heap:
            pops += 1
            if pops > max_pops:
                raise ReproError(f"greedy evaluation exceeded {max_pops} pops")
            if supervise:
                supervisor.poll(scc, settled_count)
            _, _, predicate, args = heapq.heappop(heap)
            rel = j.relation(predicate)
            key, value = args[:-1], args[-1]
            existing = rel.costs.get(key)
            if existing is not None:
                # Settled already; by the invariant the settled value is
                # final.
                continue
            t_settle = tracer.clock() if track else 0.0
            # set_cost keeps the persistent indexes on ``rel`` consistent,
            # so the long-lived context sees the settled atom immediately.
            rel.set_cost(key, value, strict=False)
            settled_count += 1
            delta: DeltaRows = {predicate: [args]}
            for rule in rules:
                for seed_bindings in _delta_seeds(rule, cdb, delta):
                    for head_pred, head_args in run_rule(
                        rule, ctx, seed=seed_bindings, mode=plan
                    ):
                        head_rel = j.relation(head_pred)
                        if head_args[:-1] in head_rel.costs:
                            continue
                        push(head_pred, head_args)
            if track:
                settle_wall = round(tracer.clock() - t_settle, 6)
                tracer.emit(
                    "iteration",
                    scc=scc,
                    iteration=settled_count,
                    delta_atoms=1,
                    new_atoms=1,
                    changed_atoms=0,
                    total_atoms=j.total_size(),
                    wall_s=settle_wall,
                )
                m = tracer.metrics
                m.counter("greedy.settled").inc()
                m.timer("greedy.settle_wall_s").observe(settle_wall)
            if supervise:
                # One settle = the greedy analogue of a fixpoint round.
                supervisor.on_round(
                    scc=scc,
                    iteration=settled_count,
                    new_atoms=1,
                    changed_atoms=0,
                    total_atoms=j.total_size(),
                )
    except SolveInterrupt as interrupt:
        # Check sites sit between settles, so ``j`` holds only fully
        # settled (final) atoms.
        interrupt.attach(
            FixpointResult(
                interpretation=j,
                iterations=settled_count,
                ascending=True,
                trajectory=[j.total_size()],
                status=interrupt.status,
            )
        )
        raise

    return FixpointResult(
        interpretation=j,
        iterations=settled_count,
        ascending=True,
        trajectory=[j.total_size()],
    )
