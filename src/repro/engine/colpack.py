"""Packed column buffers: the sharded executor's wire format.

``plan="sharded"`` moves row batches between the parent and its forked
workers (seed partitions out, derived rows back).  Pickling a
``List[Tuple]`` ships one boxed object per value; packing the batch
column-wise first ships typed buffers instead:

* ``'q'`` — exact machine ints as ``array('q')`` bytes;
* ``'d'`` — floats as ``array('d')`` bytes (bit-exact, NaN included —
  transport only cares about value fidelity, unlike
  :mod:`repro.engine.columnar`'s membership semantics);
* ``'s'`` — the column's unique strings once, plus an ``array('q')`` of
  ids;
* ``'o'`` — the boxed fallback, a plain pickled list (``bool`` and every
  other kind land here: ``True`` must round-trip as ``True``, not ``1``).

The encoding is independent of the relations' storage mode — boxed and
columnar solves both benefit — and lossless: ``unpack_rows(pack_rows(b))``
reproduces the batch bit-identically (row order included, which shard
merge order depends on for reproducible telemetry).
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, List, Tuple

#: predicate → rows; cost rows are ``key + (cost,)``.  Mirrors
#: :data:`repro.engine.sharded.RowBatch` (not imported: sharded imports us).
RowBatch = Dict[str, List[Tuple[Any, ...]]]

#: ``(kind, payload)``: kind ``'q'``/``'d'`` carry raw bytes, ``'s'``
#: carries ``(unique strings, id bytes)``, ``'o'`` the boxed list.
PackedColumn = Tuple[str, Any]

#: ``(row count, packed columns)`` for one predicate.
PackedRows = Tuple[int, List[PackedColumn]]

PackedBatch = Dict[str, PackedRows]

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def _pack_column(values: List[Any]) -> PackedColumn:
    kinds = {type(v) for v in values}
    if kinds == {int}:
        if all(_INT64_MIN <= v <= _INT64_MAX for v in values):
            return ("q", array("q", values).tobytes())
    elif kinds == {float}:
        return ("d", array("d", values).tobytes())
    elif kinds == {str}:
        ids: Dict[str, int] = {}
        encoded = array("q")
        for v in values:
            sid = ids.get(v)
            if sid is None:
                sid = len(ids)
                ids[v] = sid
            encoded.append(sid)
        return ("s", (list(ids), encoded.tobytes()))
    return ("o", values)


def _unpack_column(packed: PackedColumn, count: int) -> List[Any]:
    kind, payload = packed
    if kind == "q":
        out = array("q")
        out.frombytes(payload)
        return list(out)
    if kind == "d":
        out = array("d")
        out.frombytes(payload)
        return list(out)
    if kind == "s":
        strings, raw = payload
        ids = array("q")
        ids.frombytes(raw)
        return [strings[i] for i in ids]
    return list(payload)


def pack_rows(batch: RowBatch) -> PackedBatch:
    """Column-pack ``batch`` for cheap pickling across processes."""
    out: PackedBatch = {}
    for name, rows in batch.items():
        count = len(rows)
        width = len(rows[0]) if rows else 0
        columns = [
            _pack_column([row[pos] for row in rows]) for pos in range(width)
        ]
        out[name] = (count, columns)
    return out


def unpack_rows(packed: PackedBatch) -> RowBatch:
    """Invert :func:`pack_rows` bit-identically (row order preserved)."""
    out: RowBatch = {}
    for name, (count, columns) in packed.items():
        if not columns:
            out[name] = [() for _ in range(count)]
            continue
        decoded = [_unpack_column(column, count) for column in columns]
        out[name] = list(zip(*decoded)) if count else []
    return out
