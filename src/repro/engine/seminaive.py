"""Semi-naive evaluation for monotonic components.

Classic semi-naive evaluation specialises here to *delta-driven
re-derivation*: after the first full ``T_P`` round, a rule instance only
needs re-evaluation when it can touch an atom whose cost changed in the
previous round.  Concretely, per changed atom we pin

* each positive CDB atom subgoal to the changed rows, evaluating the rest
  of the body around the pinned bindings, and
* each CDB aggregate subgoal to the *groups* the changed rows belong to
  (the group's multiset changed, so the whole group is re-aggregated from
  the current ``J`` — aggregates are not incrementally maintainable in
  general, re-aggregation per affected group is).

New derivations are *joined* into ``J``.  For a monotonic component this
reproduces ``J_{k+1} = T_P(J_k, I)`` exactly: unpinned instances would
re-derive values already ⊑-below what ``J`` holds, so skipping them is
safe, and ``join(old, new) = new`` whenever ``new ⊒ old``.  For
non-monotonic programs the shortcut is unsound — the solver only routes
admissibility-certified components here.

The equivalence with the naive evaluator is enforced by property-based
tests across the paper's example programs and randomized workloads.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.datalog.atoms import AggregateSubgoal, Atom, AtomSubgoal
from repro.datalog.errors import NonTerminationError
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable
from repro.engine.exec import run_rule
from repro.engine.grounding import Bindings, EvalContext
from repro.engine.interpretation import Interpretation
from repro.engine.naive import FixpointResult
from repro.engine.supervisor import (
    NULL_SUPERVISOR,
    SolveInterrupt,
    Supervisor,
)
from repro.engine.tp import apply_tp
from repro.obs.tracer import NULL_TRACER, Tracer

DeltaRows = Dict[str, List[Tuple[Any, ...]]]


def _match_row(atom: Atom, row: Tuple[Any, ...]) -> Optional[Bindings]:
    """Bindings making ``atom`` equal to the concrete ``row``, or None."""
    if len(atom.args) != len(row):
        return None
    bindings: Bindings = {}
    for arg, value in zip(atom.args, row):
        if isinstance(arg, Constant):
            if arg.value != value:
                return None
        else:
            existing = bindings.get(arg)
            if existing is None:
                bindings[arg] = value
            elif existing != value:
                return None
    return bindings


def _delta_between(old: Interpretation, new: Interpretation) -> DeltaRows:
    """Rows of ``new`` that are absent from or different in ``old``."""
    delta: DeltaRows = {}
    for name, rel in new.relations.items():
        old_rel = old.relations[name]
        rows: List[Tuple[Any, ...]] = []
        if rel.is_cost:
            for key, value in rel.costs.items():
                if old_rel.costs.get(key) != value:
                    rows.append(key + (value,))
        else:
            for key in rel.tuples - old_rel.tuples:
                rows.append(key)
        if rows:
            delta[name] = rows
    return delta


#: One compiled seed source: (predicate, arity, constant checks as
#: (position, value), duplicate-variable checks as (position, first
#: position), seed writes as (variable, position)).
_SeedPlan = Tuple[
    str,
    int,
    Tuple[Tuple[int, Any], ...],
    Tuple[Tuple[int, int], ...],
    Tuple[Tuple[Variable, int], ...],
]


def _row_seed_plan(atom: Atom, keep: Optional[FrozenSet[Variable]]) -> _SeedPlan:
    """Compile ``atom`` into a row → seed-bindings extractor.

    ``keep`` restricts the seed to a variable subset (aggregate grouping
    projection); constant and duplicate-occurrence checks still cover
    every position, exactly like :func:`_match_row`.
    """
    checks: List[Tuple[int, Any]] = []
    dups: List[Tuple[int, int]] = []
    writes: List[Tuple[Variable, int]] = []
    first: Dict[Variable, int] = {}
    for pos, arg in enumerate(atom.args):
        if isinstance(arg, Constant):
            checks.append((pos, arg.value))
        elif arg in first:
            dups.append((pos, first[arg]))
        else:
            first[arg] = pos
            if keep is None or arg in keep:
                writes.append((arg, pos))
    return (
        atom.predicate,
        len(atom.args),
        tuple(checks),
        tuple(dups),
        tuple(writes),
    )


def _seed_plans(rule: Rule, cdb: FrozenSet[str]) -> List[_SeedPlan]:
    """The rule's compiled seed sources, cached on the rule object."""
    cache: Dict[FrozenSet[str], List[_SeedPlan]]
    cache = rule.__dict__.setdefault("_delta_seed_plans", {})
    plans = cache.get(cdb)
    if plans is None:
        plans = []
        for sg in rule.body:
            if isinstance(sg, AtomSubgoal) and not sg.negated:
                if sg.atom.predicate in cdb:
                    plans.append(_row_seed_plan(sg.atom, None))
            elif isinstance(sg, AggregateSubgoal):
                grouping = rule.grouping_variables(sg)
                for conjunct in sg.conjuncts:
                    if conjunct.predicate in cdb:
                        plans.append(_row_seed_plan(conjunct, grouping))
        cache[cdb] = plans
    return plans


def _delta_seeds(
    rule: Rule, cdb: FrozenSet[str], delta: DeltaRows
) -> Iterator[Bindings]:
    """Pinned initial bindings for re-evaluating ``rule``.

    For a positive CDB atom subgoal the changed row binds the subgoal's
    variables directly; for a CDB aggregate subgoal the changed conjunct
    row is projected onto the *grouping* variables, seeding re-aggregation
    of exactly the affected groups.  The full body is then re-evaluated
    around the seed (the pinned subgoal re-matches via an index hit, which
    keeps the original rule's grouping/local classification intact).

    Seeds are deduplicated by a frozenset-of-items fingerprint — an
    order-free O(k) key (a bindings dict cannot bind one variable twice,
    so equal item sets mean equal seeds).
    """
    seen: Set[FrozenSet[Tuple[Variable, Any]]] = set()
    for predicate, arity, checks, dups, writes in _seed_plans(rule, cdb):
        rows = delta.get(predicate)
        if not rows:
            continue
        for row in rows:
            if len(row) != arity:
                continue
            ok = True
            for pos, value in checks:
                if row[pos] != value:
                    ok = False
                    break
            if ok:
                for pos, pos0 in dups:
                    if row[pos] != row[pos0]:
                        ok = False
                        break
            if not ok:
                continue
            seed = {var: row[pos] for var, pos in writes}
            fingerprint = frozenset(seed.items())
            if fingerprint not in seen:
                seen.add(fingerprint)
                yield seed


def _apply_derivation(
    target: Interpretation, predicate: str, args: Tuple[Any, ...]
) -> bool:
    """Join one derived head atom into ``target``; True if it changed.

    Routed through the relation mutators so the persistent indexes stay
    consistent across rounds (``set_cost(strict=False)`` joins on
    conflict, which is exactly the semi-naive merge semantics).
    """
    rel = target.relation(predicate)
    if rel.is_cost:
        assert rel.decl.lattice is not None
        rel.decl.lattice.validate(args[-1])
        return rel.set_cost(args[:-1], args[-1], strict=False)
    return rel.add_tuple(args)


def seminaive_fixpoint(
    program: Program,
    cdb: FrozenSet[str],
    i: Interpretation,
    *,
    max_iterations: int = 100_000,
    strict: bool = True,
    plan: str = "smart",
    storage: str = "boxed",
    tracer: Tracer = NULL_TRACER,
    scc: int = 0,
    supervisor: Supervisor = NULL_SUPERVISOR,
    initial: Optional[Interpretation] = None,
) -> FixpointResult:
    """Delta-driven fixpoint of one monotonic component.

    ``strict`` governs the *first* round's cost-consistency check (later
    rounds always join — see ``_apply_derivation``).  The solver passes
    ``strict=False`` for components holding an aggregate-pushdown
    frontier predicate, whose rules *intentionally* derive conflicting
    per-key costs for the lattice join to collapse.

    With an enabled ``tracer`` one ``iteration`` event is emitted per
    round (tagged with component index ``scc``), carrying the delta fed
    to the next round split into new atoms and changed-cost (lattice
    merge) atoms.

    An active ``supervisor`` is polled at each rule/seed boundary and
    consulted per round; an interrupt escapes with the last consistent
    ``J`` and the pending delta frontier attached.  ``initial`` resumes
    from a checkpointed lower bound: round 0 re-derives over it (one
    full ``T_P`` application, joined in), so a stale or missing frontier
    cannot lose derivations — semi-naive pinning is only a shortcut for
    work the full round would repeat.
    """
    rules = [r for r in program.rules if r.head.predicate in cdb]
    resumed = initial is not None
    start = (
        initial.copy()
        if resumed
        else Interpretation(program.declarations, storage=storage)
    )
    track = tracer.enabled
    supervise = supervisor.active

    j = start
    delta: DeltaRows = {}
    trajectory: List[int] = []
    iterations = 0
    try:
        # Round 0: one full naive T_P application (over the checkpointed
        # state when resuming; conflicting cost derivations then join
        # instead of raising, as the checkpoint may already hold values
        # above any single rule instance's derivation).
        t_round = tracer.clock() if track else 0.0
        out = apply_tp(
            program,
            cdb,
            start,
            i,
            strict=strict and not resumed,
            plan=plan,
            storage=storage,
            tracer=tracer,
            supervisor=supervisor,
            scc=scc,
        )
        j = start.join(out) if resumed else out
        delta = _delta_between(start, j)
        trajectory.append(j.total_size())
        iterations = 1
        if track:
            seeded = sum(len(rows) for rows in delta.values())
            round_wall = round(tracer.clock() - t_round, 6)
            tracer.emit(
                "iteration",
                scc=scc,
                iteration=1,
                delta_atoms=seeded,
                new_atoms=seeded,
                changed_atoms=0,
                total_atoms=j.total_size(),
                wall_s=round_wall,
            )
            m = tracer.metrics
            m.counter("fixpoint.rounds").inc()
            m.counter("fixpoint.new_atoms").inc(seeded)
            m.histogram("fixpoint.delta_atoms").observe(float(seeded))
            m.timer("fixpoint.round_wall_s").observe(round_wall)
        if supervise:
            seeded = sum(len(rows) for rows in delta.values())
            supervisor.on_round(
                scc=scc,
                iteration=1,
                new_atoms=seeded,
                changed_atoms=0,
                total_atoms=j.total_size(),
            )

        # Rules that read no CDB predicate can never fire on a delta.
        dependent_rules = [
            r for r in rules if any(p in cdb for p in r.body_predicates())
        ]

        # One context for the whole fixpoint: the persistent indexes on
        # the relations of ``j`` and ``i`` survive across rounds and are
        # updated in place by ``_apply_derivation``'s mutator calls, so
        # each round touches only its delta instead of re-hashing every
        # relation.
        ctx = EvalContext(program, cdb, j, i, tracer=tracer)

        while delta:
            if iterations >= max_iterations:
                raise NonTerminationError(
                    f"semi-naive evaluation did not converge after "
                    f"{max_iterations} rounds",
                    ascending=True,
                )
            t_round = tracer.clock() if track else 0.0
            derived: List[Tuple[str, Tuple[Any, ...]]] = []
            for rule in dependent_rules:
                for seed in _delta_seeds(rule, cdb, delta):
                    if supervise:
                        # Rule-firing boundary: ``j`` is untouched until
                        # the whole round's derivations apply below.
                        supervisor.poll(scc, iterations)
                    derived.extend(run_rule(rule, ctx, seed=seed, mode=plan))
            new_delta: DeltaRows = {}
            new_atoms = changed_atoms = 0
            count = track or supervise
            for predicate, args in derived:
                rel = j.relation(predicate)
                if count:
                    existed = (
                        args[:-1] in rel.costs
                        if rel.is_cost
                        else args in rel.tuples
                    )
                if _apply_derivation(j, predicate, args):
                    if count:
                        if existed:
                            changed_atoms += 1
                        else:
                            new_atoms += 1
                    if rel.is_cost:
                        key = args[:-1]
                        row = key + (rel.costs[key],)  # value after joining
                    else:
                        row = args
                    new_delta.setdefault(predicate, []).append(row)
            delta = new_delta
            trajectory.append(j.total_size())
            iterations += 1
            if track:
                delta_size = sum(len(rows) for rows in delta.values())
                round_wall = round(tracer.clock() - t_round, 6)
                tracer.emit(
                    "iteration",
                    scc=scc,
                    iteration=iterations,
                    delta_atoms=delta_size,
                    new_atoms=new_atoms,
                    changed_atoms=changed_atoms,
                    total_atoms=j.total_size(),
                    wall_s=round_wall,
                )
                m = tracer.metrics
                m.counter("fixpoint.rounds").inc()
                m.counter("fixpoint.new_atoms").inc(new_atoms)
                m.counter("fixpoint.changed_atoms").inc(changed_atoms)
                m.histogram("fixpoint.delta_atoms").observe(float(delta_size))
                m.timer("fixpoint.round_wall_s").observe(round_wall)
            if supervise:
                supervisor.on_round(
                    scc=scc,
                    iteration=iterations,
                    new_atoms=new_atoms,
                    changed_atoms=changed_atoms,
                    total_atoms=j.total_size(),
                )
    except SolveInterrupt as interrupt:
        # ``j`` only mutates in the apply-derivations block, which has no
        # check sites — at every interrupt point it is a consistent
        # (sound) round-boundary state.
        interrupt.attach(
            FixpointResult(
                interpretation=j,
                iterations=iterations,
                ascending=True,
                trajectory=trajectory,
                status=interrupt.status,
            ),
            frontier=delta,
        )
        raise

    return FixpointResult(
        interpretation=j,
        iterations=iterations,
        ascending=True,
        trajectory=trajectory,
    )
