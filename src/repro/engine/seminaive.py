"""Semi-naive evaluation for monotonic components.

Classic semi-naive evaluation specialises here to *delta-driven
re-derivation*: after the first full ``T_P`` round, a rule instance only
needs re-evaluation when it can touch an atom whose cost changed in the
previous round.  Concretely, per changed atom we pin

* each positive CDB atom subgoal to the changed rows, evaluating the rest
  of the body around the pinned bindings, and
* each CDB aggregate subgoal to the *groups* the changed rows belong to
  (the group's multiset changed, so the whole group is re-aggregated from
  the current ``J`` — aggregates are not incrementally maintainable in
  general, re-aggregation per affected group is).

New derivations are *joined* into ``J``.  For a monotonic component this
reproduces ``J_{k+1} = T_P(J_k, I)`` exactly: unpinned instances would
re-derive values already ⊑-below what ``J`` holds, so skipping them is
safe, and ``join(old, new) = new`` whenever ``new ⊒ old``.  For
non-monotonic programs the shortcut is unsound — the solver only routes
admissibility-certified components here.

The equivalence with the naive evaluator is enforced by property-based
tests across the paper's example programs and randomized workloads.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.datalog.atoms import AggregateSubgoal, Atom, AtomSubgoal
from repro.datalog.errors import NonTerminationError
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable
from repro.engine.grounding import Bindings, EvalContext, evaluate_body, ground_head
from repro.engine.interpretation import Interpretation, Key
from repro.engine.naive import FixpointResult
from repro.engine.tp import apply_tp

DeltaRows = Dict[str, List[Tuple[Any, ...]]]


def _match_row(atom: Atom, row: Tuple[Any, ...]) -> Optional[Bindings]:
    """Bindings making ``atom`` equal to the concrete ``row``, or None."""
    if len(atom.args) != len(row):
        return None
    bindings: Bindings = {}
    for arg, value in zip(atom.args, row):
        if isinstance(arg, Constant):
            if arg.value != value:
                return None
        else:
            existing = bindings.get(arg)
            if existing is None:
                bindings[arg] = value
            elif existing != value:
                return None
    return bindings


def _delta_between(old: Interpretation, new: Interpretation) -> DeltaRows:
    """Rows of ``new`` that are absent from or different in ``old``."""
    delta: DeltaRows = {}
    for name, rel in new.relations.items():
        old_rel = old.relations[name]
        rows: List[Tuple[Any, ...]] = []
        if rel.is_cost:
            for key, value in rel.costs.items():
                if old_rel.costs.get(key) != value:
                    rows.append(key + (value,))
        else:
            for key in rel.tuples - old_rel.tuples:
                rows.append(key)
        if rows:
            delta[name] = rows
    return delta


def _delta_seeds(
    rule: Rule, cdb: FrozenSet[str], delta: DeltaRows
) -> Iterator[Bindings]:
    """Pinned initial bindings for re-evaluating ``rule``.

    For a positive CDB atom subgoal the changed row binds the subgoal's
    variables directly; for a CDB aggregate subgoal the changed conjunct
    row is projected onto the *grouping* variables, seeding re-aggregation
    of exactly the affected groups.  The full body is then re-evaluated
    around the seed (the pinned subgoal re-matches via an index hit, which
    keeps the original rule's grouping/local classification intact).
    """
    seen: Set[Tuple[Tuple[str, Any], ...]] = set()

    def emit(seed: Bindings) -> Iterator[Bindings]:
        fingerprint = tuple(
            sorted(((v.name, value) for v, value in seed.items()))
        )
        if fingerprint not in seen:
            seen.add(fingerprint)
            yield seed

    for sg in rule.body:
        if isinstance(sg, AtomSubgoal) and not sg.negated:
            if sg.atom.predicate in cdb and sg.atom.predicate in delta:
                for row in delta[sg.atom.predicate]:
                    bound = _match_row(sg.atom, row)
                    if bound is not None:
                        yield from emit(bound)
        elif isinstance(sg, AggregateSubgoal):
            grouping = rule.grouping_variables(sg)
            for conjunct in sg.conjuncts:
                if conjunct.predicate not in cdb or conjunct.predicate not in delta:
                    continue
                for row in delta[conjunct.predicate]:
                    bound = _match_row(conjunct, row)
                    if bound is None:
                        continue
                    yield from emit(
                        {v: value for v, value in bound.items() if v in grouping}
                    )


def _apply_derivation(
    target: Interpretation, predicate: str, args: Tuple[Any, ...]
) -> bool:
    """Join one derived head atom into ``target``; True if it changed."""
    rel = target.relation(predicate)
    if rel.is_cost:
        assert rel.decl.lattice is not None
        rel.decl.lattice.validate(args[-1])
        key, value = args[:-1], args[-1]
        existing = rel.costs.get(key)
        if existing is None:
            if rel.decl.has_default and value == rel.decl.lattice.bottom:
                return False
            rel.costs[key] = value
            return True
        joined = rel.decl.lattice.join(existing, value)
        if joined == existing:
            return False
        rel.costs[key] = joined
        return True
    return rel.add_tuple(args)


def seminaive_fixpoint(
    program: Program,
    cdb: FrozenSet[str],
    i: Interpretation,
    *,
    max_iterations: int = 100_000,
) -> FixpointResult:
    """Delta-driven fixpoint of one monotonic component."""
    rules = [r for r in program.rules if r.head.predicate in cdb]
    empty = Interpretation(program.declarations)

    # Round 0: one full naive T_P application.
    j = apply_tp(program, cdb, empty, i, strict=True)
    delta = _delta_between(empty, j)
    trajectory = [j.total_size()]
    iterations = 1

    # Rules that read no CDB predicate can never fire on a delta.
    dependent_rules = [
        r for r in rules if any(p in cdb for p in r.body_predicates())
    ]

    while delta:
        if iterations >= max_iterations:
            raise NonTerminationError(
                f"semi-naive evaluation did not converge after "
                f"{max_iterations} rounds",
                ascending=True,
            )
        ctx = EvalContext(program, cdb, j, i)
        derived: List[Tuple[str, Tuple[Any, ...]]] = []
        for rule in dependent_rules:
            for seed in _delta_seeds(rule, cdb, delta):
                for bindings in evaluate_body(rule, ctx, initial=seed):
                    derived.append(ground_head(rule, bindings))
        new_delta: DeltaRows = {}
        for predicate, args in derived:
            if _apply_derivation(j, predicate, args):
                rel = j.relation(predicate)
                if rel.is_cost:
                    key = args[:-1]
                    row = key + (rel.costs[key],)  # the value after joining
                else:
                    row = args
                new_delta.setdefault(predicate, []).append(row)
        delta = new_delta
        trajectory.append(j.total_size())
        iterations += 1

    return FixpointResult(
        interpretation=j,
        iterations=iterations,
        ascending=True,
        trajectory=trajectory,
    )
