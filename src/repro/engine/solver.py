"""Component-wise solving: iterated minimal models (Section 6.3).

The program is condensed into strongly connected components
(:func:`repro.analysis.dependencies.condense`); each component's minimal
model is computed bottom-up with the lower components' model as the fixed
``I``, exactly the iterated construction the paper describes.  The result
is one total interpretation over all predicates.

``check`` policies:

* ``"strict"`` (default) — refuse programs that fail range-restriction or
  per-component admissibility (so the least fixpoint is guaranteed to be
  the unique minimal model, Lemma 4.1 + Corollary 3.5);
* ``"lenient"`` — skip the admissibility gate but keep runtime
  cost-consistency checking and oscillation detection (used to demonstrate
  the paper's negative examples);
* ``"none"`` — no static checks at all (benchmarks of the checks
  themselves).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Literal, Optional

from repro.analysis.classify import classify_program
from repro.analysis.dependencies import Component, condense
from repro.analysis.report import AnalysisReport, analyze_program
from repro.datalog.errors import NotAdmissibleError, SafetyError
from repro.datalog.program import Program
from repro.engine.interpretation import Interpretation
from repro.engine.greedy import greedy_applicable, greedy_fixpoint
from repro.engine.naive import FixpointResult, kleene_fixpoint
from repro.engine.seminaive import seminaive_fixpoint

CheckPolicy = Literal["strict", "lenient", "none"]
Method = Literal["naive", "seminaive", "greedy", "auto"]


@dataclass
class SolveResult:
    """The iterated minimal model plus per-component diagnostics."""

    model: Interpretation
    component_results: List[FixpointResult] = field(default_factory=list)
    components: List[Component] = field(default_factory=list)
    #: Evaluation mode actually used per component (parallel to
    #: ``components``) — informative for every method, decisive evidence
    #: for ``method="auto"``.
    component_methods: List[str] = field(default_factory=list)
    analysis: Optional[AnalysisReport] = None

    #: Set by solve(); used by explain().
    program: Optional[Program] = None

    @property
    def total_iterations(self) -> int:
        return sum(r.iterations for r in self.component_results)

    def __getitem__(self, predicate: str):
        return self.model[predicate]

    def explain(self, predicate: str, key, **kwargs) -> str:
        """Render a derivation tree for one model atom (engine.trace)."""
        from repro.engine.trace import explain as _explain

        if self.program is None:
            raise ValueError("this result was built without a program")
        return _explain(self.program, self.model, predicate, tuple(key), **kwargs)


def solve(
    program: Program,
    edb: Optional[Interpretation] = None,
    *,
    check: CheckPolicy = "strict",
    method: Method = "naive",
    max_iterations: int = 100_000,
    plan: str = "smart",
) -> SolveResult:
    """Compute the iterated minimal model of ``program`` over ``edb``.

    ``method="auto"`` picks an evaluation mode *per component* from the
    classification pass (:mod:`repro.analysis.classify`): greedy for
    certified-extremal components, semi-naive for the other certified
    ones, strict naive for anything needing well-founded care.

    ``plan`` selects the join-ordering mode of the compiled execution
    layer (:mod:`repro.engine.exec`): ``"smart"`` (selectivity-aware,
    default) or ``"off"`` (legacy schedule order).
    """
    analysis: Optional[AnalysisReport] = None
    if check != "none":
        analysis = analyze_program(program)

        def _diags(*prefixes: str):
            return [
                d
                for d in analysis.diagnostics
                if d.code.startswith(prefixes)
            ]

        if not analysis.range_restricted:
            bad = [str(r) for r in analysis.safety if not r.ok]
            raise SafetyError(
                "program is not range-restricted:\n  " + "\n  ".join(bad),
                diagnostics=_diags("MAD1"),
            )
        if check == "strict":
            if not analysis.admissible:
                bad = [str(c) for c in analysis.components if not c.ok]
                raise NotAdmissibleError(
                    "program not certified monotonic (use check='lenient' to "
                    "attempt evaluation anyway):\n  " + "\n  ".join(bad),
                    diagnostics=_diags("MAD3"),
                )
            if not analysis.conflict_free:
                raise NotAdmissibleError(
                    "program not certified conflict-free (use check='lenient' "
                    "to rely on the runtime cost-consistency check):\n  "
                    + str(analysis.conflict),
                    diagnostics=_diags("MAD2"),
                )

    auto_methods = {}
    if method == "auto":
        classification = (
            analysis.classification
            if analysis is not None and analysis.classification is not None
            else classify_program(program)
        )
        auto_methods = {
            c.component.cdb: c.method for c in classification.components
        }

    state = edb.copy() if edb is not None else Interpretation(program.declarations)
    result = SolveResult(model=state, analysis=analysis, program=program)
    for component in condense(program):
        chosen = (
            auto_methods.get(component.cdb, "naive")
            if method == "auto"
            else method
        )
        if chosen == "seminaive":
            used = "seminaive"
            fixpoint = seminaive_fixpoint(
                program,
                component.cdb,
                state,
                max_iterations=max_iterations,
                plan=plan,
            )
        elif chosen == "greedy" and greedy_applicable(program, component):
            # Greedy applies to extremal components only; other components
            # of the same program fall through to the naive evaluator.
            used = "greedy"
            fixpoint = greedy_fixpoint(
                program, component, state, assume_invariant=True, plan=plan
            )
        else:
            used = "naive"
            fixpoint = kleene_fixpoint(
                program,
                component.cdb,
                state,
                max_iterations=max_iterations,
                strict=True,
                plan=plan,
            )
        state = state.join(fixpoint.interpretation)
        result.components.append(component)
        result.component_methods.append(used)
        result.component_results.append(fixpoint)
    result.model = state
    return result
