"""Component-wise solving: iterated minimal models (Section 6.3).

The program is condensed into strongly connected components
(:func:`repro.analysis.dependencies.condense`); each component's minimal
model is computed bottom-up with the lower components' model as the fixed
``I``, exactly the iterated construction the paper describes.  The result
is one total interpretation over all predicates.

``check`` policies:

* ``"strict"`` (default) — refuse programs that fail range-restriction or
  per-component admissibility (so the least fixpoint is guaranteed to be
  the unique minimal model, Lemma 4.1 + Corollary 3.5);
* ``"lenient"`` — skip the admissibility gate but keep runtime
  cost-consistency checking and oscillation detection (used to demonstrate
  the paper's negative examples);
* ``"none"`` — no static checks at all (benchmarks of the checks
  themselves).

Telemetry: passing a :class:`repro.obs.Tracer` threads the solve through
the instrumentation layer — analysis/classify phase spans, per-SCC
``scc_start``/``scc_end`` events with the classification verdict and the
reason auto picked its method, per-iteration fixpoint events from the
evaluators, per-rule executor profiles and the solve's own index /
plan-cache counters — and attaches the digest to
:attr:`SolveResult.telemetry`.  Untraced solves go through the shared
disabled tracer and pay one branch per instrumentation site.  Index
counters are always solve-scoped (:func:`use_index_stats`), so
concurrent solves never share them.  See docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Literal, Optional, Tuple

from repro.analysis.classify import ProgramClassification, classify_program
from repro.analysis.dependencies import Component, condense
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.report import AnalysisReport, analyze_program
from repro.analysis.sharding import ShardingReport, analyze_sharding
from repro.datalog.errors import NotAdmissibleError, SafetyError
from repro.datalog.program import Program
from repro.engine.checkpoint import Checkpoint
from repro.engine.exec import _check_pushdown_mode, get_pushdown
from repro.engine.interpretation import (
    IndexStats,
    Interpretation,
    _check_storage_mode,
    make_relation,
    use_index_stats,
)
from repro.engine.greedy import greedy_applicable, greedy_fixpoint
from repro.engine.naive import FixpointResult, kleene_fixpoint
from repro.engine.seminaive import seminaive_fixpoint
from repro.engine.sharded import (
    ShardWorkerError,
    sharded_fixpoint,
    sharded_supported,
)
from repro.engine.supervisor import (
    NULL_SUPERVISOR,
    Budget,
    CancelToken,
    SolveInterrupt,
    Supervisor,
    component_unbounded,
)
from repro.obs.summary import TelemetrySummary, summarize
from repro.obs.tracer import NULL_TRACER, Tracer

CheckPolicy = Literal["strict", "lenient", "none"]
Method = Literal["naive", "seminaive", "greedy", "auto"]


@dataclass
class SolveResult:
    """The iterated minimal model plus per-component diagnostics."""

    model: Interpretation
    component_results: List[FixpointResult] = field(default_factory=list)
    components: List[Component] = field(default_factory=list)
    #: Evaluation mode actually used per component (parallel to
    #: ``components``) — informative for every method, decisive evidence
    #: for ``method="auto"``.
    component_methods: List[str] = field(default_factory=list)
    analysis: Optional[AnalysisReport] = None
    #: Structured telemetry digest (per-rule / per-iteration tables);
    #: None unless the solve ran with a collecting tracer.
    telemetry: Optional[TelemetrySummary] = None
    #: ``"complete"``, or the supervised interrupt's
    #: :data:`~repro.engine.supervisor.STATUSES` value; with any status
    #: other than ``"complete"``, ``model`` is the sound-so-far lower
    #: bound of the true minimal model (exact below
    #: ``interrupted_component``).
    status: str = "complete"
    #: Human-readable interrupt cause (empty when complete).
    reason: str = ""
    #: Resumable snapshot of ``model``; set iff the solve was interrupted.
    checkpoint: Optional[Checkpoint] = None
    #: MAD7xx divergence findings the supervisor raised while running.
    runtime_diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Bottom-up index of the component the interrupt landed in.
    interrupted_component: Optional[int] = None

    #: Set by solve(); used by explain().
    program: Optional[Program] = None

    @property
    def complete(self) -> bool:
        return self.status == "complete"

    @property
    def total_iterations(self) -> int:
        return sum(r.iterations for r in self.component_results)

    def method_by_component(self) -> List[Tuple[Tuple[str, ...], str, int]]:
        """``(cdb predicates, method used, iterations)`` per SCC, in
        bottom-up solve order — which predicates each method applied to."""
        return [
            (
                tuple(sorted(component.cdb)),
                method,
                fixpoint.iterations,
            )
            for component, method, fixpoint in zip(
                self.components, self.component_methods, self.component_results
            )
        ]

    def __getitem__(self, predicate: str):
        return self.model[predicate]

    def explain(self, predicate: str, key, **kwargs) -> str:
        """Render a derivation tree for one model atom
        (engine.provenance)."""
        from repro.engine.provenance import explain as _explain

        if self.program is None:
            raise ValueError("this result was built without a program")
        return _explain(self.program, self.model, predicate, tuple(key), **kwargs)


def solve(
    program: Program,
    edb: Optional[Interpretation] = None,
    *,
    check: CheckPolicy = "strict",
    method: Method = "naive",
    max_iterations: int = 100_000,
    plan: str = "smart",
    pushdown: str = "auto",
    storage: str = "boxed",
    shards: Optional[int] = None,
    workers: Optional[int] = None,
    tracer: Optional[Tracer] = None,
    budget: Optional[Budget] = None,
    cancel: Optional[CancelToken] = None,
    resume: Optional[Checkpoint] = None,
) -> SolveResult:
    """Compute the iterated minimal model of ``program`` over ``edb``.

    ``method="auto"`` picks an evaluation mode *per component* from the
    classification pass (:mod:`repro.analysis.classify`): greedy for
    certified-extremal components, semi-naive for the other certified
    ones, strict naive for anything needing well-founded care.

    ``plan`` selects the join-ordering mode of the compiled execution
    layer (:mod:`repro.engine.exec`): ``"smart"`` (selectivity-aware,
    default) or ``"off"`` (legacy schedule order).  ``plan="sharded"``
    additionally hash-partitions every component the shard-safety
    analyzer (:mod:`repro.analysis.sharding`) certifies SHARDABLE across
    ``workers`` OS processes (``shards`` partitions), falling back to
    sequential evaluation — with a ``shard_plan`` telemetry event naming
    the lint-consistent reason — for BLOCKED components, supervised or
    resumed solves; join ordering stays ``"smart"``.

    ``pushdown`` controls the aggregate-pushdown optimization
    (:mod:`repro.analysis.premap`): with ``"auto"`` (default),
    premappable extrema are pushed into their recursion — the fixpoint
    carries a collapsed per-group frontier instead of the full interior
    relation — and the auxiliary predicates are stripped from the final
    model, which is provably identical to the unoptimized one.
    ``"off"`` evaluates the program exactly as written.  The static
    checks (``check``) always run against the *original* program.

    ``storage`` selects the relation representation
    (:mod:`repro.engine.interpretation`): ``"boxed"`` (dict/set,
    default) or ``"columnar"`` (typed column-major arrays,
    docs/STORAGE.md).  The model is bit-identical either way; a boxed
    ``edb`` passed to a columnar solve (or vice versa) is converted on
    entry.

    ``tracer`` opts the solve into the telemetry layer
    (:mod:`repro.obs`); the resulting digest lands on
    :attr:`SolveResult.telemetry`.

    ``budget`` / ``cancel`` opt the solve into supervision
    (:mod:`repro.engine.supervisor`): instead of spinning until killed,
    an over-budget, diverging or cancelled solve returns a
    ``SolveResult`` with ``status != "complete"``, the sound-so-far
    partial model and a resumable :attr:`SolveResult.checkpoint`.
    ``resume`` seeds evaluation from such a checkpoint; the final model
    is identical to an uninterrupted solve's.  See docs/ROBUSTNESS.md.
    """
    t = tracer if tracer is not None else NULL_TRACER
    # Index counters are solve-scoped even when untraced, so concurrent
    # solves cannot cross-contaminate each other's statistics.
    stats = t.index_stats if tracer is not None else IndexStats()
    with use_index_stats(stats):
        return _solve_traced(
            program,
            edb,
            check=check,
            method=method,
            max_iterations=max_iterations,
            plan=plan,
            pushdown=pushdown,
            storage=storage,
            shards=shards,
            workers=workers,
            tracer=t,
            budget=budget,
            cancel=cancel,
            resume=resume,
        )


def _component_initial(
    state: Interpretation, component: Component, program: Program
) -> Interpretation:
    """The restriction of ``state`` to the component's CDB predicates —
    the evaluator's resume seed (the rest of ``state`` is its ``I``)."""
    initial = Interpretation(program.declarations, storage=state.storage)
    for predicate in component.cdb:
        src = state.relations.get(predicate)
        if src is None or not len(src):
            continue
        dst = initial.relation(predicate)
        if src.is_cost:
            for key, value in src.costs.items():
                dst.set_cost(key, value, strict=False)
        else:
            for key in src.tuples:
                dst.add_tuple(key)
    return initial


def _solve_traced(
    program: Program,
    edb: Optional[Interpretation],
    *,
    check: CheckPolicy,
    method: Method,
    max_iterations: int,
    plan: str,
    pushdown: str = "auto",
    storage: str = "boxed",
    shards: Optional[int] = None,
    workers: Optional[int] = None,
    tracer: Tracer,
    budget: Optional[Budget] = None,
    cancel: Optional[CancelToken] = None,
    resume: Optional[Checkpoint] = None,
) -> SolveResult:
    tracer.start(program.name)
    t_solve = tracer.clock()
    analysis: Optional[AnalysisReport] = None
    if check != "none":
        with tracer.phase("analyze"):
            analysis = analyze_program(program)

        def _diags(*prefixes: str):
            return [
                d
                for d in analysis.diagnostics
                if d.code.startswith(prefixes)
            ]

        if not analysis.range_restricted:
            bad = [str(r) for r in analysis.safety if not r.ok]
            raise SafetyError(
                "program is not range-restricted:\n  " + "\n  ".join(bad),
                diagnostics=_diags("MAD1"),
            )
        if check == "strict":
            if not analysis.admissible:
                bad = [str(c) for c in analysis.components if not c.ok]
                raise NotAdmissibleError(
                    "program not certified monotonic (use check='lenient' to "
                    "attempt evaluation anyway):\n  " + "\n  ".join(bad),
                    diagnostics=_diags("MAD3"),
                )
            if not analysis.conflict_free:
                raise NotAdmissibleError(
                    "program not certified conflict-free (use check='lenient' "
                    "to rely on the runtime cost-consistency check):\n  "
                    + str(analysis.conflict),
                    diagnostics=_diags("MAD2"),
                )

    classification = (
        analysis.classification if analysis is not None else None
    )

    # -- aggregate pushdown (Zaniolo et al.): rewrite premappable
    # extrema before method selection, so classification-driven choices
    # see the program actually evaluated.  The rewrite's auxiliary
    # frontier predicates rely on the lattice join to collapse
    # conflicting per-key costs, so their components run with
    # strict=False; they are stripped from the final model.
    eval_program = program
    aux_predicates: FrozenSet[str] = frozenset()
    if _check_pushdown_mode(pushdown) == "auto":
        with tracer.phase("pushdown"):
            rewrite = get_pushdown(program, classification)
        if rewrite.changed:
            eval_program = rewrite.program
            aux_predicates = rewrite.aux_predicates
            if tracer.enabled:
                for applied in rewrite.applied:
                    tracer.emit(
                        "rewrite_applied",
                        head=applied.head,
                        predicate=applied.predicate,
                        auxiliary=applied.auxiliary,
                        aggregate=applied.function,
                    )

    auto_methods: Dict[frozenset, str] = {}
    eval_classification: Optional[ProgramClassification] = classification
    if eval_program is not program and (
        method == "auto" or plan == "sharded" or classification is not None
    ):
        # The rewrite changed the SCC structure; classify what runs so
        # auto picks methods (and telemetry reports verdicts) for the
        # rewritten components, not the original ones.
        with tracer.phase("classify"):
            eval_classification = classify_program(eval_program)
    elif (
        method == "auto" or plan == "sharded"
    ) and eval_classification is None:
        with tracer.phase("classify"):
            eval_classification = classify_program(program)
    if method == "auto":
        assert eval_classification is not None
        auto_methods = {
            c.component.cdb: c.method
            for c in eval_classification.components
        }
    #: cdb → (verdict, reasons) for telemetry, whatever the method.
    verdicts: Dict[frozenset, Tuple[str, Tuple[str, ...]]] = {}
    if eval_classification is not None:
        verdicts = {
            c.component.cdb: (c.verdict.value, c.reasons)
            for c in eval_classification.components
        }

    supervisor = (
        Supervisor(budget, cancel, tracer=tracer)
        if budget is not None or cancel is not None
        else NULL_SUPERVISOR
    )

    # -- shard plan: the analyzer's per-component proofs, resolved once.
    # Join ordering inside evaluators stays "smart" (the exec layer has
    # no "sharded" mode; sharding is a solver-level strategy).
    exec_plan = "smart" if plan == "sharded" else plan
    sharding_report: Optional[ShardingReport] = None
    n_workers = workers if workers is not None else (os.cpu_count() or 1)
    n_shards = shards if shards is not None else max(8, 4 * n_workers)
    if plan == "sharded":
        with tracer.phase("shard-plan"):
            sharding_report = analyze_sharding(
                eval_program, classification=eval_classification
            )

    storage = _check_storage_mode(storage)
    state = (
        edb.with_storage(storage)
        if edb is not None
        else Interpretation(program.declarations, storage=storage)
    )
    if resume is not None:
        # The checkpoint state already contains the EDB it was solved
        # over; joining (rather than replacing) keeps any facts the
        # caller added since — they participate via re-derivation.
        # Checkpoints are captured against (and restored over) the
        # *original* program: auxiliary frontier atoms are never
        # checkpointed and re-derive from the restored lower bound.
        state = state.join(resume.restore(program))
    for name in aux_predicates:
        decl = eval_program.declarations[name]
        state.declarations[name] = decl
        state.relations[name] = make_relation(decl, storage)
    result = SolveResult(model=state, analysis=analysis, program=program)
    for index, component in enumerate(condense(eval_program)):
        chosen = (
            auto_methods.get(component.cdb, "naive")
            if method == "auto"
            else method
        )
        if chosen == "greedy" and not greedy_applicable(
            eval_program, component
        ):
            # Greedy applies to extremal components only; other components
            # of the same program fall through to the naive evaluator.
            chosen = "naive"
        # Pushdown frontier components intentionally derive conflicting
        # per-key costs (the join IS the aggregate) — disable the
        # strict functional-dependency check for them only.
        strict_costs = aux_predicates.isdisjoint(component.cdb)
        shard_verdict = (
            sharding_report.for_component(component)
            if sharding_report is not None
            else None
        )
        use_sharded, shard_reason = _shard_decision(
            plan, shard_verdict, resume, supervisor
        )
        if plan == "sharded" and tracer.enabled:
            tracer.emit(
                "shard_plan",
                scc=index,
                predicates=sorted(component.cdb),
                status=(
                    shard_verdict.status
                    if shard_verdict is not None
                    else "unknown"
                ),
                action="sharded" if use_sharded else "fallback",
                reason=shard_reason,
                shards=n_shards,
                workers=n_workers,
            )
        initial = (
            _component_initial(state, component, eval_program)
            if resume is not None
            else None
        )
        if supervisor.active:
            # The component's own (checkpointed) atoms come back as the
            # evaluator's total_atoms; don't double-count them.
            base = state.total_size()
            if initial is not None:
                base -= initial.total_size()
            supervisor.enter_component(
                base_atoms=base,
                watch_spiral=component_unbounded(
                    eval_program, component.cdb
                ),
            )
        if tracer.enabled:
            verdict, reasons = verdicts.get(component.cdb, (None, ()))
            tracer.emit(
                "scc_start",
                scc=index,
                predicates=sorted(component.cdb),
                method=chosen,
                verdict=verdict,
                reasons=list(reasons),
                rules=len(component.rules),
            )
            t_scc = tracer.clock()
        def _sequential(method_name: str) -> FixpointResult:
            if method_name == "seminaive":
                return seminaive_fixpoint(
                    eval_program,
                    component.cdb,
                    state,
                    max_iterations=max_iterations,
                    strict=strict_costs,
                    plan=exec_plan,
                    storage=storage,
                    tracer=tracer,
                    scc=index,
                    supervisor=supervisor,
                    initial=initial,
                )
            if method_name == "greedy":
                return greedy_fixpoint(
                    eval_program,
                    component,
                    state,
                    assume_invariant=True,
                    plan=exec_plan,
                    storage=storage,
                    tracer=tracer,
                    scc=index,
                    supervisor=supervisor,
                    initial=initial,
                )
            return kleene_fixpoint(
                eval_program,
                component.cdb,
                state,
                max_iterations=max_iterations,
                strict=strict_costs,
                plan=exec_plan,
                storage=storage,
                tracer=tracer,
                scc=index,
                supervisor=supervisor,
                initial=initial,
            )

        try:
            if use_sharded:
                assert shard_verdict is not None
                assert shard_verdict.key is not None
                try:
                    fixpoint, _populated = sharded_fixpoint(
                        eval_program,
                        component.cdb,
                        state,
                        shard_verdict.key,
                        component.rules,
                        method=chosen,
                        shards=n_shards,
                        workers=n_workers,
                        max_iterations=max_iterations,
                        strict=strict_costs,
                        plan=exec_plan,
                        storage=storage,
                        tracer=tracer,
                        scc=index,
                        supervisor=supervisor,
                    )
                    chosen = f"{chosen}+sharded"
                except ShardWorkerError as failure:
                    # Crash isolation: a dead or raising worker never
                    # reaches the barrier merge, so ``state`` is
                    # untouched — nothing to invalidate.  Re-run the
                    # whole component sequentially, witnessing the
                    # reason the same way the BLOCKED fallback does.
                    if tracer.enabled:
                        tracer.metrics.counter("shard.worker_failures").inc()
                        tracer.emit(
                            "shard_plan",
                            scc=index,
                            predicates=sorted(component.cdb),
                            status=shard_verdict.status,
                            action="fallback",
                            reason=f"worker failure: {failure.reason}",
                            shards=n_shards,
                            workers=n_workers,
                        )
                    fixpoint = _sequential(chosen)
            else:
                fixpoint = _sequential(chosen)
        except SolveInterrupt as interrupt:
            # Graceful degradation: fold the evaluator's sound partial
            # state into the model, snapshot a resumable checkpoint, and
            # report instead of raising.
            partial = interrupt.partial
            if partial is not None:
                state = state.join(partial.interpretation)
                result.components.append(component)
                result.component_methods.append(chosen)
                result.component_results.append(partial)
            result.status = interrupt.status
            result.reason = interrupt.reason
            result.interrupted_component = index
            # Auxiliary frontier atoms never leave the solver: the
            # partial model and the checkpoint (captured against the
            # original program) carry original predicates only; resume
            # re-derives the frontier from the restored lower bound.
            frontier = interrupt.frontier
            if aux_predicates:
                for name in aux_predicates:
                    state.relations.pop(name, None)
                    state.declarations.pop(name, None)
                if frontier:
                    frontier = {
                        name: rows
                        for name, rows in frontier.items()
                        if name not in aux_predicates
                    }
            result.model = state
            result.checkpoint = Checkpoint.capture(
                program,
                state,
                status=interrupt.status,
                reason=interrupt.reason,
                component=index,
                iterations=result.total_iterations,
                frontier=frontier,
            )
            if tracer.enabled:
                tracer.emit(
                    "checkpoint",
                    status=interrupt.status,
                    component=index,
                    atoms=state.total_size(),
                )
            break
        if tracer.enabled:
            tracer.emit(
                "scc_end",
                scc=index,
                method=chosen,
                iterations=fixpoint.iterations,
                atoms=fixpoint.interpretation.total_size(),
                wall_s=round(tracer.clock() - t_scc, 6),
            )
        state = state.join(fixpoint.interpretation)
        result.components.append(component)
        result.component_methods.append(chosen)
        result.component_results.append(fixpoint)
    if result.complete:
        for name in aux_predicates:
            state.relations.pop(name, None)
            state.declarations.pop(name, None)
        result.model = state
    result.runtime_diagnostics = list(supervisor.diagnostics)
    if tracer.enabled:
        _flush_telemetry(tracer, eval_program, result, t_solve)
        if tracer.collect:
            result.telemetry = summarize(tracer.events)
    return result


def _shard_decision(
    plan: str,
    verdict,
    resume: Optional[Checkpoint],
    supervisor: Supervisor,
) -> Tuple[bool, str]:
    """Whether to shard this component, with the lint-consistent reason.

    The reason string mirrors the analyzer's witness chain (MAD901-903)
    so the telemetry fallback event and `repro shard-plan` agree.
    """
    if plan != "sharded":
        return False, ""
    if verdict is None:
        return False, "component not analyzed"
    if not verdict.ok:
        return False, verdict.witness or verdict.status
    if verdict.key is None:
        return False, "no key plan"
    if resume is not None:
        return False, "resuming from a checkpoint"
    if supervisor.active and (
        supervisor.budget.bounded or supervisor.budget.on_divergence == "abort"
    ):
        # Budgets and divergence heuristics poll inside the fixpoint
        # loops; forked workers run unsupervised, so a budgeted solve
        # stays sequential.  A bare CancelToken (the CLI's Ctrl-C path)
        # does not block sharding — it is honored between components.
        return (
            False,
            "budgeted solve (budgets are enforced parent-side only)",
        )
    supported, why = sharded_supported()
    if not supported:
        return False, why
    return True, ""


def _flush_telemetry(
    tracer: Tracer, program: Program, result: SolveResult, t_solve: float
) -> None:
    """Emit the end-of-solve events: per-rule profiles, counters, totals."""
    scc_of: Dict[str, int] = {}
    for index, component in enumerate(result.components):
        for predicate in component.cdb:
            scc_of[predicate] = index
    rule_index = {id(rule): i for i, rule in enumerate(program.rules)}
    rows = sorted(
        tracer.rule_stats(),
        key=lambda row: rule_index.get(id(row[0]), -1),
    )
    for rule, calls, derived, wall in rows:
        tracer.emit(
            "rule_profile",
            rule=str(rule),
            rule_index=rule_index.get(id(rule), -1),
            head=rule.head.predicate,
            scc=scc_of.get(rule.head.predicate),
            calls=calls,
            derived=derived,
            wall_s=round(wall, 6),
        )
    tracer.emit(
        "counters",
        index=tracer.index_stats.snapshot(),
        plan_cache={"hits": tracer.plan_hits, "misses": tracer.plan_misses},
    )
    solve_wall = round(tracer.clock() - t_solve, 6)
    m = tracer.metrics
    m.counter("solve.components").inc(len(result.components))
    m.gauge("solve.atoms").set(float(result.model.total_size()))
    m.timer("solve.wall_s").observe(solve_wall)
    # The merged registry (parent sites + worker snapshots folded at the
    # shard barrier) rides the stream as one ``metrics_snapshot`` event,
    # emitted before ``solve_end`` so the flight-recorder ring keeps it.
    if len(tracer.metrics):
        tracer.emit("metrics_snapshot", metrics=tracer.metrics.snapshot())
    tracer.emit(
        "solve_end",
        iterations=result.total_iterations,
        atoms=result.model.total_size(),
        wall_s=solve_wall,
    )
