"""Magic sets: query-directed evaluation (the Section 7 substrate).

Section 7 cites Mumick et al.'s magic-sets transformation for r-monotonic
programs as prior optimization work.  This module implements the classic
transformation for the **plain positive Datalog subset** (no aggregates,
no negation, no cost arguments): given a query pattern, rules are adorned
with bound/free annotations, magic predicates restrict each derived
predicate to the bindings actually demanded, and bottom-up evaluation of
the transformed program computes exactly the query's answers while
visiting fewer atoms.

Scope is deliberate: extending magic sets *through* aggregation is the
open problem the paper points at (relevance can cut off cost improvements
— Sudarshan & Ramakrishnan's "aggregate relevance" line), so aggregate
rules are rejected rather than mis-optimized.  The transformation still
pays off for the plain-Datalog components below an aggregation stratum.

Usage::

    answers, stats = magic_solve(program, edb, query=("reach", ("a", None)))

``None`` marks free argument positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.datalog.atoms import Atom, AtomSubgoal
from repro.datalog.errors import ProgramError
from repro.datalog.program import PredicateDecl, Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable
from repro.engine.interpretation import Interpretation
from repro.engine.solver import solve

Adornment = str  # e.g. "bf": first argument bound, second free
QueryPattern = Tuple[str, Tuple[Optional[Any], ...]]


def _check_plain(program: Program) -> None:
    for rule in program.rules:
        if any(True for _ in rule.aggregate_subgoals()):
            raise ProgramError(
                "magic sets here cover the plain positive Datalog subset; "
                "aggregate rules are out of scope (Section 7's open problem)"
            )
        if any(True for _ in rule.negative_atom_subgoals()):
            raise ProgramError("magic sets here do not cover negation")
        if any(True for _ in rule.builtin_subgoals()):
            raise ProgramError("magic sets here do not cover built-ins")
    for decl in program.declarations.values():
        if decl.is_cost_predicate:
            raise ProgramError(
                "magic sets here do not cover cost predicates"
            )


def _adorn(atom: Atom, bound: Set[Variable]) -> Adornment:
    out = []
    for arg in atom.args:
        if isinstance(arg, Constant) or arg in bound:
            out.append("b")
        else:
            out.append("f")
    return "".join(out)


def _magic_name(predicate: str, adornment: Adornment) -> str:
    return f"magic__{predicate}__{adornment}"


def _adorned_name(predicate: str, adornment: Adornment) -> str:
    return f"{predicate}__{adornment}"


def _bound_args(atom: Atom, adornment: Adornment):
    return tuple(
        arg for arg, a in zip(atom.args, adornment) if a == "b"
    )


@dataclass
class MagicProgram:
    """The transformed program plus bookkeeping for answer extraction."""

    program: Program
    query_predicate: str
    query_adornment: Adornment
    seed_fact: Tuple[str, Tuple[Any, ...]]


def magic_transform(program: Program, query: QueryPattern) -> MagicProgram:
    """Adorn + add magic predicates for ``query``.

    Standard supplementary-free magic sets with left-to-right sideways
    information passing: for each adorned rule, positive IDB subgoals are
    adorned with the variables bound by the magic seed and the subgoals to
    their left; each adorned IDB subgoal spawns a magic rule.
    """
    _check_plain(program)
    predicate, pattern = query
    if predicate not in program.idb_predicates:
        raise ProgramError(f"query predicate {predicate} is not derived")
    decl = program.decl(predicate)
    if len(pattern) != decl.arity:
        raise ProgramError(
            f"query pattern arity {len(pattern)} != {decl.arity}"
        )
    query_adornment = "".join(
        "b" if value is not None else "f" for value in pattern
    )

    idb = program.idb_predicates
    new_rules: List[Rule] = []
    new_decls: Dict[str, PredicateDecl] = {
        name: decl
        for name, decl in program.declarations.items()
        if name not in idb
    }
    pending: List[Tuple[str, Adornment]] = [(predicate, query_adornment)]
    done: Set[Tuple[str, Adornment]] = set()

    def declare(name: str, arity: int) -> None:
        if name not in new_decls:
            new_decls[name] = PredicateDecl(name, arity)

    while pending:
        target, adornment = pending.pop()
        if (target, adornment) in done:
            continue
        done.add((target, adornment))
        n_bound = adornment.count("b")
        declare(_magic_name(target, adornment), n_bound)
        declare(_adorned_name(target, adornment), program.decl(target).arity)

        for rule in program.rules_for(target):
            bound: Set[Variable] = {
                arg
                for arg, a in zip(rule.head.args, adornment)
                if a == "b" and isinstance(arg, Variable)
            }
            body: List[AtomSubgoal] = [
                AtomSubgoal(
                    Atom(
                        _magic_name(target, adornment),
                        _bound_args(rule.head, adornment),
                    )
                )
            ]
            for sg in rule.body:
                assert isinstance(sg, AtomSubgoal) and not sg.negated
                atom = sg.atom
                if atom.predicate in idb:
                    sub_adornment = _adorn(atom, bound)
                    body.append(
                        AtomSubgoal(
                            Atom(
                                _adorned_name(atom.predicate, sub_adornment),
                                atom.args,
                            )
                        )
                    )
                    # Magic rule: the demand for this subgoal.
                    magic_head = Atom(
                        _magic_name(atom.predicate, sub_adornment),
                        _bound_args(atom, sub_adornment),
                    )
                    new_rules.append(
                        Rule(
                            head=magic_head,
                            body=tuple(body[:-1]),
                            label=f"magic:{atom.predicate}^{sub_adornment}",
                        )
                    )
                    pending.append((atom.predicate, sub_adornment))
                else:
                    body.append(sg)
                bound |= atom.variable_set()
            new_rules.append(
                Rule(
                    head=Atom(_adorned_name(target, adornment), rule.head.args),
                    body=tuple(body),
                    label=f"adorned:{target}^{adornment}",
                )
            )

    transformed = Program(
        rules=new_rules,
        declarations=new_decls.values(),
        constraints=(),
        aggregates=dict(program.aggregates),
        name=f"{program.name}-magic",
    )
    seed = (
        _magic_name(predicate, query_adornment),
        tuple(value for value in pattern if value is not None),
    )
    return MagicProgram(
        program=transformed,
        query_predicate=predicate,
        query_adornment=query_adornment,
        seed_fact=seed,
    )


@dataclass
class MagicStats:
    """Work comparison: atoms derived with vs without the transformation."""

    magic_atoms: int
    full_atoms: Optional[int] = None


def magic_solve(
    program: Program,
    edb: Interpretation,
    query: QueryPattern,
    *,
    compare_full: bool = False,
) -> Tuple[Set[Tuple[Any, ...]], MagicStats]:
    """Answers to ``query`` via the magic transformation.

    Returns the set of full answer tuples for the query predicate
    (matching the bound positions) and derivation-size statistics;
    ``compare_full=True`` additionally runs the untransformed program to
    fill ``stats.full_atoms``.
    """
    magic = magic_transform(program, query)
    # The magic seed predicate is rule-defined, so the seed must enter the
    # fixpoint as a fact *rule* (T_P reads derived predicates from the
    # growing J, not from the extensional database).
    seed_name, seed_args = magic.seed_fact
    seed_rule = Rule(
        head=Atom(seed_name, tuple(Constant(v) for v in seed_args)),
        label="magic-seed",
    )
    seeded_program = Program(
        rules=list(magic.program.rules) + [seed_rule],
        declarations=magic.program.declarations.values(),
        constraints=(),
        aggregates=dict(magic.program.aggregates),
        name=magic.program.name,
    )
    seeded = Interpretation(seeded_program.declarations)
    for name, rel in edb.relations.items():
        if name in seeded_program.declarations:
            seeded.relation(name).merge_tuples(rel.tuples)

    result = solve(seeded_program, seeded, check="none")
    predicate, pattern = query
    answer_rel = result.model.relation(
        _adorned_name(predicate, magic.query_adornment)
    )
    answers = {
        row
        for row in answer_rel.tuples
        if all(
            expected is None or row[i] == expected
            for i, expected in enumerate(pattern)
        )
    }
    derived = sum(
        len(result.model.relation(name).tuples)
        for name in seeded_program.idb_predicates
    )
    stats = MagicStats(magic_atoms=derived)
    if compare_full:
        full = solve(program, edb, check="none")
        stats.full_atoms = sum(
            len(full.model.relation(name).tuples)
            for name in program.idb_predicates
        )
        expected_answers = {
            row
            for row in full.model.relation(predicate).tuples
            if all(
                value is None or row[i] == value
                for i, value in enumerate(pattern)
            )
        }
        assert answers == expected_answers, "magic transformation is unsound"
    return answers, stats
