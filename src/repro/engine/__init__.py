"""Evaluation engine: interpretations, T_P, naive/semi-naive fixpoints.

Robustness layer (docs/ROBUSTNESS.md): :class:`Budget`,
:class:`CancelToken` and :func:`sigint_cancels` supervise a solve;
:class:`Checkpoint` captures the sound partial model of an interrupted
run for ``solve(resume=...)``.
"""

from repro.engine.checkpoint import Checkpoint, CheckpointError
from repro.engine.grounding import (
    Bindings,
    EvalContext,
    evaluate_body,
    ground_head,
    schedule,
    solve_conjunction,
)
from repro.engine.greedy import greedy_applicable, greedy_fixpoint
from repro.engine.interpretation import Interpretation, Key, Relation
from repro.engine.magic import MagicProgram, MagicStats, magic_solve, magic_transform
from repro.engine.modelcheck import is_model, is_premodel, violations
from repro.engine.naive import FixpointResult, kleene_fixpoint
from repro.engine.seminaive import seminaive_fixpoint
from repro.engine.solver import SolveResult, solve
from repro.engine.provenance import Justification, explain, justifications
from repro.engine.supervisor import (
    Budget,
    CancelToken,
    SolveInterrupt,
    Supervisor,
    sigint_cancels,
)
from repro.engine.tp import apply_tp

__all__ = [
    "Budget",
    "CancelToken",
    "Checkpoint",
    "CheckpointError",
    "SolveInterrupt",
    "Supervisor",
    "sigint_cancels",
    "Bindings",
    "EvalContext",
    "evaluate_body",
    "ground_head",
    "schedule",
    "solve_conjunction",
    "Interpretation",
    "Key",
    "Relation",
    "greedy_applicable",
    "greedy_fixpoint",
    "MagicProgram",
    "MagicStats",
    "magic_solve",
    "magic_transform",
    "is_model",
    "is_premodel",
    "violations",
    "FixpointResult",
    "kleene_fixpoint",
    "seminaive_fixpoint",
    "SolveResult",
    "solve",
    "Justification",
    "explain",
    "justifications",
    "apply_tp",
]
