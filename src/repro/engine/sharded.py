"""Sharded fixpoint execution: hash-partitioned parallel evaluation.

Executes one SHARDABLE component (:mod:`repro.analysis.sharding`) as a
fan-out/fan-in over OS processes:

1. **Seed pass** (parent): the component's seed rules — those reading no
   CDB predicate — are applied once via :func:`~repro.engine.tp.apply_tp`
   against the lower-strata interpretation.  Their derivations are the
   only entry points into the recursion.
2. **Partition**: every seed row is assigned to a shard by hashing the
   value in its predicate's proven key column (:class:`ShardKey`).  The
   hash is ``zlib.crc32`` over ``repr`` — *stable across processes*,
   unlike the builtin ``hash`` whose per-process randomization would make
   parent and child disagree about ownership.
3. **Fan-out**: a ``fork`` process pool runs the component's *recursive*
   rules to fixpoint per shard, resuming from the shard's seed partition
   (the evaluators' ``initial=`` resume path — a shard is literally a
   checkpointed lower bound of the component restricted to its keys).
   The program, lower-strata interpretation and compiled plans are
   inherited copy-on-write through ``fork``; only the seed row batches
   and result row batches cross process boundaries, as pickled plain
   tuples.
4. **Barrier merge**: shard interpretations are folded into one via the
   relation mutators — ``set_cost(strict=False)`` *is* the lattice join,
   i.e. the two-phase ``merge`` of :mod:`repro.aggregates.algebra`
   applied at the granularity of whole interpretations.

Soundness rests on the analyzer's proof: every derivation is key-local,
so shard ``k`` computes exactly the monolithic model restricted to keys
hashing to ``k``, and the barrier union is the monolithic model.  The
differential suite (``tests/test_sharded_equivalence.py``) pins
bit-identical models against the default plan and the naive evaluator.

Worker processes run unsupervised (budgets and cancellation remain
parent-side, at seed/merge granularity); the solver therefore falls back
to sequential evaluation for supervised or resumed solves — see
``_shard_fallback_reason`` in :mod:`repro.engine.solver`.  Telemetry,
however, crosses the boundary: when the parent solve is traced, each
worker runs a local (non-streaming) :class:`~repro.obs.tracer.Tracer`,
and ships its per-rule firing stats and mergeable metrics registry
snapshot back through the pool result alongside the packed row batches.
The parent folds them in at the barrier — rule stats via
``tracer.absorb_rule`` (rule indexes map back to identical objects,
identity being fork-stable), metric instruments via the registry's
associative ``merge`` (the same two-phase discipline as
:mod:`repro.aggregates.algebra`) — so a sharded solve's telemetry digest
covers the worker-side work at full fidelity.

Where it pays: each shard's fixpoint converges *independently*, so
per-round costs stop accruing for early-converging shards instead of
being dragged along for the component's global round count — on the
naive evaluator (full ``T_P`` + model comparison per round) this yields
real speedups on convergence-skewed workloads even on one core.  On
multiple cores, shards additionally run truly in parallel (processes
sidestep the GIL).  Honest numbers and non-wins are catalogued in
docs/PARALLELISM.md.
"""

from __future__ import annotations

import multiprocessing
import zlib
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.sharding import ShardKey
from repro.datalog.errors import ReproError
from repro.datalog.program import Program
from repro.engine.colpack import PackedBatch, pack_rows, unpack_rows
from repro.engine.interpretation import Interpretation
from repro.engine.naive import FixpointResult, kleene_fixpoint
from repro.engine.seminaive import seminaive_fixpoint
from repro.engine.supervisor import NULL_SUPERVISOR, Supervisor
from repro.engine.tp import apply_tp
from repro.obs.tracer import NULL_TRACER, Tracer

#: predicate → rows; cost rows are ``key + (cost,)``, ordinary rows are
#: the tuple itself.  Batches are column-packed
#: (:mod:`repro.engine.colpack`) before crossing process boundaries, so
#: the pickled payload is typed buffers, not per-value boxed objects.
RowBatch = Dict[str, List[Tuple[Any, ...]]]


class ShardWorkerError(ReproError):
    """A shard worker died (signal/OOM) or raised mid-component.

    Raised at the pool boundary of :func:`sharded_fixpoint` *instead of*
    letting the raw :class:`BrokenProcessPool` / pickled worker
    exception escape.  By construction nothing needs invalidating: the
    parent's interpretation is only ever mutated at the barrier merge,
    which a failing pool never reaches — the solver catches this error
    and re-runs the whole component sequentially, recording the reason
    on the ``shard_plan`` fallback event exactly like a BLOCKED verdict
    (docs/PARALLELISM.md).
    """

    def __init__(self, reason: str) -> None:
        self.reason = reason
        super().__init__(reason)


def shard_of(value: Any, shards: int) -> int:
    """The shard owning ``value`` — stable across processes and runs."""
    return zlib.crc32(repr(value).encode("utf-8")) % shards


def sharded_supported() -> Tuple[bool, str]:
    """Whether this platform can run the fork-based executor."""
    if "fork" not in multiprocessing.get_all_start_methods():
        return False, "fork start method unavailable on this platform"
    return True, ""


@dataclass
class _ForkContext:
    """Everything a worker needs, inherited copy-on-write via fork."""

    program: Program  # component rules minus seed rules
    cdb: FrozenSet[str]
    i: Interpretation  # lower strata + EDB (read-only in workers)
    method: str  # "seminaive" | "kleene"
    max_iterations: int
    plan: str
    storage: str
    traced: bool  # parent solve is traced → workers relay telemetry


#: Module-level slot read by forked workers.  Only ever set around the
#: Pool's lifetime in :func:`sharded_fixpoint`; fork snapshots it.
_FORK: Dict[str, _ForkContext] = {}


def _interpretation_rows(
    interpretation: Interpretation, predicates: FrozenSet[str]
) -> RowBatch:
    """Flatten ``interpretation``'s rows for ``predicates`` to batches."""
    out: RowBatch = {}
    for name in predicates:
        rel = interpretation.relations.get(name)
        if rel is None or not len(rel):
            continue
        if rel.is_cost:
            out[name] = [key + (value,) for key, value in rel.costs.items()]
        else:
            out[name] = list(rel.tuples)
    return out


def _merge_rows(target: Interpretation, rows: RowBatch) -> None:
    """Lattice-join row batches into ``target`` (the barrier merge)."""
    for name, batch in rows.items():
        rel = target.relation(name)
        if rel.is_cost:
            for row in batch:
                rel.set_cost(row[:-1], row[-1], strict=False)
        else:
            for row in batch:
                rel.add_tuple(row)


def _run_shard(
    payload: Tuple[int, PackedBatch],
) -> Tuple[PackedBatch, int, str, Optional[Dict[str, Any]]]:
    """Worker: one shard's fixpoint over its seed partition.

    Runs in a forked child; reads the parent's :data:`_FORK` snapshot.
    Seed and result batches cross the process boundary column-packed.
    Returns ``(packed derived rows, iterations, status, telemetry)``
    where ``telemetry`` is ``None`` for untraced solves and otherwise a
    plain-data relay the parent folds in at the barrier: per-rule
    cumulative stats keyed by index into ``ctx.program.rules`` (rule
    objects are identical across the fork, so the parent maps indexes
    back to the objects its own tracer knows) plus the worker tracer's
    metrics registry snapshot.
    """
    _, packed = payload
    ctx = _FORK["ctx"]
    # Local tracer: collect=False (no event buffering, no sinks) — only
    # the mergeable instruments and rule stats accumulate, which is
    # exactly what can be shipped back as plain data.
    tracer = Tracer(collect=False) if ctx.traced else NULL_TRACER
    initial = Interpretation(ctx.program.declarations, storage=ctx.storage)
    _merge_rows(initial, unpack_rows(packed))
    if ctx.method == "kleene":
        fixpoint = kleene_fixpoint(
            ctx.program,
            ctx.cdb,
            ctx.i,
            max_iterations=ctx.max_iterations,
            strict=False,
            plan=ctx.plan,
            storage=ctx.storage,
            tracer=tracer,
            supervisor=NULL_SUPERVISOR,
            initial=initial,
        )
    else:
        fixpoint = seminaive_fixpoint(
            ctx.program,
            ctx.cdb,
            ctx.i,
            max_iterations=ctx.max_iterations,
            strict=False,
            plan=ctx.plan,
            storage=ctx.storage,
            tracer=tracer,
            supervisor=NULL_SUPERVISOR,
            initial=initial,
        )
    telemetry: Optional[Dict[str, Any]] = None
    if ctx.traced:
        rule_index = {id(rule): i for i, rule in enumerate(ctx.program.rules)}
        telemetry = {
            "rules": {
                rule_index[id(rule)]: [calls, derived, wall]
                for rule, calls, derived, wall in tracer.rule_stats()
                if id(rule) in rule_index
            },
            "metrics": tracer.metrics.snapshot(),
            "iterations": fixpoint.iterations,
            "atoms": fixpoint.interpretation.total_size(),
        }
    return (
        pack_rows(_interpretation_rows(fixpoint.interpretation, ctx.cdb)),
        fixpoint.iterations,
        fixpoint.status,
        telemetry,
    )


def _without_seed_rules(program: Program, seed_rules: List[Any]) -> Program:
    """The program with this component's seed rules removed.

    Workers must not re-run seed rules: they read only replicated lower
    strata, so every shard would re-derive the *entire* seed set —
    including rows owned by other shards.  The parent runs them once.
    Rules are compared by identity (the same objects, not equal copies).
    """
    drop = {id(rule) for rule in seed_rules}
    return Program(
        rules=tuple(r for r in program.rules if id(r) not in drop),
        declarations=tuple(program.declarations.values()),
        constraints=program.constraints,
        aggregates=dict(program.aggregates),
        name=f"{program.name}+shard",
        validate=False,
    )


def sharded_fixpoint(
    program: Program,
    cdb: FrozenSet[str],
    i: Interpretation,
    key: ShardKey,
    component_rules: Tuple[Any, ...],
    *,
    method: str = "seminaive",
    shards: int = 8,
    workers: int = 2,
    max_iterations: int = 100_000,
    strict: bool = True,
    plan: str = "smart",
    storage: str = "boxed",
    tracer: Tracer = NULL_TRACER,
    scc: int = 0,
    supervisor: Supervisor = NULL_SUPERVISOR,
) -> Tuple[FixpointResult, int]:
    """Evaluate one SHARDABLE component hash-partitioned across workers.

    ``key`` is the analyzer's proof object; ``component_rules`` the
    component's rules in program order (``key.seed_rules`` /
    ``key.recursive_rules`` index into it).  ``method`` selects the
    per-shard evaluator — ``"kleene"`` or ``"seminaive"`` — so a sharded
    solve exercises the *same* evaluator as its sequential counterpart
    and benchmarks isolate the effect of sharding itself.

    Returns ``(fixpoint result, shards actually populated)``.  The
    result's ``iterations`` is the maximum over shards (the parallel
    critical path); its trajectory is the merged model size.
    """
    seed_rules = [component_rules[idx] for idx in key.seed_rules]
    empty = Interpretation(program.declarations)
    seeds = apply_tp(
        program,
        cdb,
        empty,
        i,
        rules=seed_rules,
        strict=strict,
        plan=plan,
        tracer=tracer,
        supervisor=supervisor,
        scc=scc,
    )

    # Partition seed rows by the proven key column.  Shards with no seeds
    # derive nothing (every recursive derivation is key-local and =r
    # aggregates are false on empty groups), so they are never spawned.
    partitions: Dict[int, RowBatch] = {}
    for name, batch in _interpretation_rows(seeds, cdb).items():
        pos = key.positions[name]
        for row in batch:
            bucket = partitions.setdefault(shard_of(row[pos], shards), {})
            bucket.setdefault(name, []).append(row)

    merged = Interpretation(program.declarations, storage=storage)
    _merge_rows(merged, _interpretation_rows(seeds, cdb))

    statuses: List[str] = []
    iterations = 1  # the parent's seed pass
    if partitions:
        traced = tracer.enabled
        t_merge = tracer.clock() if traced else 0.0
        shard_program = _without_seed_rules(program, seed_rules)
        _FORK["ctx"] = _ForkContext(
            program=shard_program,
            cdb=cdb,
            i=i,
            method="kleene" if method in ("naive", "kleene") else "seminaive",
            max_iterations=max_iterations,
            plan=plan,
            storage=storage,
            traced=traced,
        )
        try:
            mp = multiprocessing.get_context("fork")
            payloads = [
                (shard, pack_rows(rows))
                for shard, rows in sorted(partitions.items())
            ]
            pool_size = max(1, min(workers, len(payloads)))
            chunksize = max(1, len(payloads) // (pool_size * 4))
            # ProcessPoolExecutor (not mp.Pool): a worker killed by a
            # signal or the OOM killer surfaces as BrokenProcessPool
            # instead of hanging the parent on a result that will never
            # arrive.  Both failure modes — dead worker and a raise
            # inside _run_shard — are narrowed to ShardWorkerError here
            # so the solver can degrade to sequential evaluation.
            try:
                with ProcessPoolExecutor(
                    max_workers=pool_size, mp_context=mp
                ) as pool:
                    results = list(
                        pool.map(_run_shard, payloads, chunksize=chunksize)
                    )
            except BrokenProcessPool as exc:
                raise ShardWorkerError(
                    "shard worker died mid-component "
                    "(killed by a signal or the OOM killer)"
                ) from exc
            except ShardWorkerError:
                raise
            except Exception as exc:
                raise ShardWorkerError(
                    f"shard worker raised {type(exc).__name__}: {exc}"
                ) from exc
        finally:
            _FORK.pop("ctx", None)
        for packed, shard_iterations, status, _telemetry in results:
            _merge_rows(merged, unpack_rows(packed))
            statuses.append(status)
            iterations = max(iterations, shard_iterations + 1)
        if traced:
            # Barrier telemetry fold: absorb each worker's rule stats
            # (indexes → the parent's identical rule objects) and merge
            # its metrics registry snapshot — merge is associative and
            # shards arrive in sorted order, so the result is
            # deterministic for any worker count.
            for (shard, _), (_, _, _, telemetry) in zip(payloads, results):
                if telemetry is None:
                    continue
                for idx, (calls, derived, wall) in sorted(
                    telemetry["rules"].items()
                ):
                    tracer.absorb_rule(
                        shard_program.rules[idx], calls, derived, wall
                    )
                tracer.metrics.merge_snapshot(telemetry["metrics"])
                tracer.emit(
                    "worker_telemetry",
                    scc=scc,
                    shard=shard,
                    iterations=telemetry["iterations"],
                    atoms=telemetry["atoms"],
                    rules=len(telemetry["rules"]),
                    metrics=telemetry["metrics"],
                )
            m = tracer.metrics
            m.counter("shard.partitions").inc(len(partitions))
            for rows in partitions.values():
                m.histogram("shard.seed_rows").observe(
                    float(sum(len(batch) for batch in rows.values()))
                )
            m.timer("shard.barrier_wall_s").observe(
                tracer.clock() - t_merge
            )
            tracer.emit(
                "shard_merge",
                scc=scc,
                shards=len(partitions),
                workers=pool_size,
                atoms=merged.total_size(),
                wall_s=round(tracer.clock() - t_merge, 6),
            )

    bad = [s for s in statuses if s != "complete"]
    return (
        FixpointResult(
            interpretation=merged,
            iterations=iterations,
            ascending=True,
            trajectory=[merged.total_size()],
            status=bad[0] if bad else "complete",
        ),
        len(partitions),
    )
