"""Resumable solve checkpoints: serialized interpretation + frontier.

A :class:`Checkpoint` captures the sound-so-far state of an interrupted
solve — for monotonic programs every intermediate ``T_P`` iterate is a
⊑-lower bound of the minimal model (Theorem 3.1 / Lemma 4.1), so the
snapshot is both a meaningful partial answer *and* a valid restart
point: the solver re-seeds each component's fixpoint from the
checkpointed atoms and iterates the inflationary ``J ← J ⊔ T_P(J)``
from there, which converges to the same least fixpoint an uninterrupted
run reaches.

The on-disk format is JSON (``Checkpoint.save`` / ``Checkpoint.load``):

* ``format`` — :data:`CHECKPOINT_FORMAT`;
* ``program`` — a fingerprint of the rules + declarations the snapshot
  was taken against; resuming against a different program is refused;
* ``status`` / ``reason`` / ``component`` / ``iterations`` — why and
  where the producing solve stopped;
* ``relations`` — per predicate, the tuples (ordinary) or
  ``key ↦ cost`` rows (cost predicates, core only);
* ``frontier`` — the pending semi-naive delta rows at interrupt
  (advisory: resume re-derives the frontier with one full ``T_P``
  round, so a checkpoint is valid even when the frontier is stale).

Cost values are plain Python scalars most of the time; ``frozenset`` and
``tuple`` values (set lattices, product lattices) are round-tripped
through a small tagged encoding.  Anything else is refused loudly at
checkpoint time rather than mis-restored at resume time.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.datalog.errors import ProgramError, ReproError
from repro.datalog.program import Program
from repro.engine.interpretation import Interpretation

#: Bump when the serialized layout changes incompatibly.
CHECKPOINT_FORMAT = 1


class CheckpointError(ReproError):
    """A checkpoint could not be produced, parsed, or safely restored."""


# -- value codec ----------------------------------------------------------------
#
# JSON can carry numbers, strings, bools and None natively (the stdlib
# encoder also round-trips ±inf/nan).  Tuples and frozensets — legal
# constants and lattice values in this engine — are wrapped in
# single-key tag objects; plain dicts never appear as values, so the
# tags cannot collide with data.

_TUPLE_TAG = "__tuple__"
_FROZENSET_TAG = "__frozenset__"


def _encode_value(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [_encode_value(v) for v in value]}
    if isinstance(value, frozenset):
        return {
            _FROZENSET_TAG: sorted(
                (_encode_value(v) for v in value), key=repr
            )
        }
    raise CheckpointError(
        f"cannot checkpoint value {value!r} of type "
        f"{type(value).__name__}; supported: numbers, strings, bools, "
        f"None, tuples, frozensets"
    )


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if _TUPLE_TAG in value:
            return tuple(_decode_value(v) for v in value[_TUPLE_TAG])
        if _FROZENSET_TAG in value:
            return frozenset(
                _decode_value(v) for v in value[_FROZENSET_TAG]
            )
        raise CheckpointError(f"unknown tagged value {value!r}")
    if isinstance(value, list):
        raise CheckpointError(f"bare list {value!r} in checkpoint")
    return value


def program_fingerprint(program: Program) -> str:
    """A stable digest of the program's rules and declarations.

    Facts are part of the rule set when they concern rule-defined
    predicates (see ``Database.program``), so resuming after the logic
    changed is refused while resuming with the same program text — the
    supported workflow — matches.
    """
    parts: List[str] = sorted(str(rule) for rule in program.rules)
    for name in sorted(program.declarations):
        decl = program.declarations[name]
        lattice = decl.lattice.name if decl.lattice is not None else "-"
        parts.append(f"@{name}/{decl.arity}:{lattice}:{decl.has_default}")
    digest = hashlib.sha256("\n".join(parts).encode("utf-8"))
    return digest.hexdigest()[:16]


@dataclass
class Checkpoint:
    """A resumable snapshot of an interrupted (or partial) solve."""

    fingerprint: str
    status: str
    reason: str
    #: Bottom-up index of the component the solve stopped inside.
    component: int
    #: Global fixpoint rounds completed before the interrupt.
    iterations: int
    #: predicate → {"kind": "tuples"|"costs", "rows": [...]}.
    relations: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: predicate → pending delta rows (advisory).
    frontier: Dict[str, List[Any]] = field(default_factory=dict)

    # -- construction ------------------------------------------------------------

    @classmethod
    def capture(
        cls,
        program: Program,
        state: Interpretation,
        *,
        status: str,
        reason: str,
        component: int,
        iterations: int,
        frontier: Optional[Dict[str, List[Any]]] = None,
    ) -> "Checkpoint":
        """Serialize ``state`` (the joined interpretation so far)."""
        relations: Dict[str, Dict[str, Any]] = {}
        for name, rel in state.relations.items():
            if not len(rel):
                continue
            if rel.is_cost:
                rows = [
                    [[_encode_value(k) for k in key], _encode_value(value)]
                    for key, value in sorted(rel.costs.items(), key=repr)
                ]
                relations[name] = {"kind": "costs", "rows": rows}
            else:
                rows = [
                    [_encode_value(k) for k in key]
                    for key in sorted(rel.tuples, key=repr)
                ]
                relations[name] = {"kind": "tuples", "rows": rows}
        encoded_frontier: Dict[str, List[Any]] = {}
        for name, delta_rows in (frontier or {}).items():
            encoded_frontier[name] = [
                [_encode_value(v) for v in row] for row in delta_rows
            ]
        return cls(
            fingerprint=program_fingerprint(program),
            status=status,
            reason=reason,
            component=component,
            iterations=iterations,
            relations=relations,
            frontier=encoded_frontier,
        )

    # -- restore -----------------------------------------------------------------

    def restore(self, program: Program) -> Interpretation:
        """The checkpointed atoms as an interpretation over ``program``.

        Refuses a fingerprint mismatch (the rules or declarations
        changed since the snapshot) and unknown predicates, so a stale
        checkpoint fails loudly instead of seeding a wrong model.
        """
        expected = program_fingerprint(program)
        if self.fingerprint != expected:
            raise CheckpointError(
                f"checkpoint was taken against a different program "
                f"(fingerprint {self.fingerprint}, current {expected}); "
                f"re-solve from scratch"
            )
        state = Interpretation(program.declarations)
        for name, payload in self.relations.items():
            try:
                rel = state.relation(name)
            except ProgramError as exc:
                raise CheckpointError(str(exc)) from exc
            if payload.get("kind") == "costs":
                if not rel.is_cost:
                    raise CheckpointError(
                        f"{name} is ordinary now but was a cost predicate "
                        f"in the checkpoint"
                    )
                for key, value in payload.get("rows", ()):
                    rel.set_cost(
                        tuple(_decode_value(k) for k in key),
                        _decode_value(value),
                        strict=False,
                    )
            else:
                if rel.is_cost:
                    raise CheckpointError(
                        f"{name} is a cost predicate now but was ordinary "
                        f"in the checkpoint"
                    )
                for key in payload.get("rows", ()):
                    rel.add_tuple(tuple(_decode_value(k) for k in key))
        return state

    # -- (de)serialization ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": CHECKPOINT_FORMAT,
            "program": self.fingerprint,
            "status": self.status,
            "reason": self.reason,
            "component": self.component,
            "iterations": self.iterations,
            "relations": self.relations,
            "frontier": self.frontier,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Checkpoint":
        if not isinstance(payload, dict):
            raise CheckpointError("checkpoint is not a JSON object")
        version = payload.get("format")
        if version != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"checkpoint format {version!r} not supported "
                f"(expected {CHECKPOINT_FORMAT})"
            )
        try:
            return cls(
                fingerprint=str(payload["program"]),
                status=str(payload["status"]),
                reason=str(payload.get("reason", "")),
                component=int(payload["component"]),
                iterations=int(payload.get("iterations", 0)),
                relations=dict(payload.get("relations", {})),
                frontier=dict(payload.get("frontier", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed checkpoint: {exc}"
            ) from exc

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "Checkpoint":
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"{path} is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(payload)

    @property
    def total_atoms(self) -> int:
        return sum(
            len(payload.get("rows", ()))
            for payload in self.relations.values()
        )
