"""Solve supervision: budgets, cancellation and divergence detection.

Lemma 2.2 only guarantees finite minimal models for *safe* programs
(Definition 2.5).  The moment evaluation leaves the syntactic conditions
— unbounded lattices, greedy evaluation of merely pseudo-monotonic
components, user-supplied aggregates — the Kleene chain can ascend
forever (Example 5.1) or blow up combinatorially.  The supervisor is the
resource-governance layer that makes such solves *fail predictably*:

* **budgets** (:class:`Budget`) — a wall-clock deadline, a global
  fixpoint-round cap and a derived-atom cap, checked cooperatively at
  iteration and rule-firing boundaries;
* **cancellation** (:class:`CancelToken`) — an external kill switch the
  evaluators poll, also wired to SIGINT by the CLI
  (:func:`sigint_cancels`), so an interrupt lands at a safe boundary
  instead of tearing a :class:`~repro.engine.interpretation.Relation`
  mid-mutation;
* **divergence detection** — two cheap per-round heuristics.  A *cost
  spiral* is ``N`` consecutive rounds that only revise existing costs
  (no new keys) on a component holding a cost predicate over an
  unbounded lattice — the signature of Example 5.1 or of shortest paths
  over a negative cycle, where every round strictly improves values that
  will never converge.  An *atom-growth alarm* is ``N`` consecutive
  rounds each multiplying the component's atom count by
  ``growth_factor``.  Both emit a structured runtime diagnostic
  (``MAD701`` / ``MAD702``, see docs/ROBUSTNESS.md) and a
  ``divergence_warning`` telemetry event; with
  ``Budget(on_divergence="abort")`` they stop the solve.

A tripped budget raises :class:`SolveInterrupt` at the *boundary*, never
mid-round: the evaluator attaches its partial fixpoint state and the
solver (:mod:`repro.engine.solver`) turns it into a
``SolveResult`` with ``status != "complete"``, a sound partial model
(for monotonic programs every intermediate ``T_P`` iterate is a lower
bound in ⊑) and a resumable :class:`~repro.engine.checkpoint.Checkpoint`.

The default :data:`NULL_SUPERVISOR` is permanently inactive; unbudgeted
solves pay one attribute read per instrumentation site, mirroring the
``NULL_TRACER`` discipline of :mod:`repro.obs.tracer`.
"""

from __future__ import annotations

import math
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator, List, Optional

from repro.datalog.errors import ReproError
from repro.obs.tracer import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.analysis.diagnostics import Diagnostic
    from repro.datalog.program import Program

#: ``SolveResult.status`` values a supervised solve can end with.
STATUSES = ("complete", "partial", "timeout", "cancelled", "diverging")

#: How often (in polls) the wall clock is read at rule-firing
#: boundaries; cancellation is checked on every poll.
_POLL_STRIDE = 32


class CancelToken:
    """A thread-safe, one-way cancellation flag.

    Any thread (or a signal handler, see :func:`sigint_cancels`) may call
    :meth:`cancel`; the evaluators poll :attr:`cancelled` at iteration
    and rule-firing boundaries and stop at the next safe point, leaving
    every :class:`~repro.engine.interpretation.Relation` and its indexes
    consistent.
    """

    __slots__ = ("_event", "reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason: Optional[str] = None

    def cancel(self, reason: Optional[str] = None) -> None:
        """Request cancellation (idempotent; the first reason wins)."""
        if reason is not None and self.reason is None:
            self.reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "cancelled" if self.cancelled else "armed"
        return f"<CancelToken {state}>"


@contextmanager
def sigint_cancels(token: CancelToken) -> Iterator[CancelToken]:
    """Route SIGINT *and* SIGTERM to ``token.cancel()`` for the block.

    The first Ctrl-C — or an orchestrator's SIGTERM at shutdown —
    cancels the token: the running solve stops at its next cooperative
    boundary with ``status="cancelled"`` and a checkpoint, instead of a
    ``KeyboardInterrupt`` unwinding through a half-applied index update
    (or a default SIGTERM kill tearing the process mid-mutation).  A
    second signal of either kind restores that signal's previous
    handler's behaviour (normally: raise / terminate), for solves that
    stopped polling.  Both previous handlers are restored on exit.
    Outside the main thread (where ``signal.signal`` is unavailable) the
    guard degrades to a no-op.
    """
    guarded = (signal.SIGINT, signal.SIGTERM)
    try:
        previous = {signum: signal.getsignal(signum) for signum in guarded}

        def _handler(signum: int, frame: Any) -> None:
            if token.cancelled:
                # Second signal: fall back to this signal's previous
                # handler (SIGINT: raise KeyboardInterrupt; SIGTERM:
                # terminate).
                earlier = previous[signum]
                signal.signal(signum, earlier)
                if callable(earlier):
                    earlier(signum, frame)
                elif earlier == signal.SIG_DFL and signum == signal.SIGTERM:
                    signal.raise_signal(signal.SIGTERM)
                return
            token.cancel(signal.Signals(signum).name)

        for signum in guarded:
            signal.signal(signum, _handler)
    except ValueError:  # pragma: no cover - non-main thread
        yield token
        return
    try:
        yield token
    finally:
        for signum in guarded:
            signal.signal(signum, previous[signum])


@dataclass(frozen=True)
class Budget:
    """Resource limits for one solve.  ``None`` disables a limit.

    ``max_iterations`` counts fixpoint rounds *globally* across all
    components (for the greedy evaluator a settled atom counts as one
    round); unlike the evaluators' own hard ``max_iterations`` backstop
    (which raises :class:`~repro.datalog.errors.NonTerminationError`),
    exhausting a budget degrades gracefully into a partial
    ``SolveResult`` plus checkpoint.  ``max_atoms`` bounds the model
    size (derived atoms across the whole solve); ``max_cost_updates``
    bounds cumulative in-place lattice-merge revisions — the quantity a
    cost spiral burns while ``max_atoms`` stands still.
    """

    #: Wall-clock limit in seconds from solve start.
    timeout: Optional[float] = None
    #: Global fixpoint-round cap (graceful; status ``"partial"``).
    max_iterations: Optional[int] = None
    #: Total derived-atom cap across the solve.
    max_atoms: Optional[int] = None
    #: Cumulative changed-cost (lattice merge) cap across the solve.
    max_cost_updates: Optional[int] = None
    #: Consecutive suspicious rounds before a divergence heuristic trips.
    divergence_window: int = 8
    #: Per-round atom multiplication factor the growth alarm watches for.
    growth_factor: float = 2.0
    #: ``"warn"`` — emit MAD701/702 and keep going; ``"abort"`` — stop
    #: the solve with ``status="diverging"``.
    on_divergence: str = "warn"

    def __post_init__(self) -> None:
        if self.on_divergence not in ("warn", "abort"):
            raise ValueError(
                f"on_divergence must be 'warn' or 'abort', "
                f"got {self.on_divergence!r}"
            )
        if self.divergence_window < 2:
            raise ValueError("divergence_window must be at least 2")

    @property
    def bounded(self) -> bool:
        """True iff any hard limit is set."""
        return (
            self.timeout is not None
            or self.max_iterations is not None
            or self.max_atoms is not None
            or self.max_cost_updates is not None
        )


class SolveInterrupt(ReproError):
    """Control-flow signal: a supervised solve must stop *now*.

    Raised by :meth:`Supervisor.poll` / :meth:`Supervisor.on_round` at a
    safe boundary.  The evaluator catching it on the way out attaches
    its partial fixpoint state (:meth:`attach`); the solver consumes it
    and never lets it escape to callers.
    """

    def __init__(
        self,
        status: str,
        reason: str,
        *,
        scc: Optional[int] = None,
        iteration: Optional[int] = None,
    ) -> None:
        assert status in STATUSES and status != "complete"
        self.status = status
        self.reason = reason
        self.scc = scc
        self.iteration = iteration
        #: Partial component state, attached by the interrupted evaluator.
        self.partial: Optional[Any] = None  # FixpointResult
        #: Pending semi-naive delta rows at interrupt (advisory).
        self.frontier: Optional[dict] = None
        super().__init__(f"solve interrupted ({status}): {reason}")

    def attach(self, partial: Any, frontier: Optional[dict] = None) -> None:
        """Record the interrupted component's sound-so-far state."""
        if self.partial is None:
            self.partial = partial
        if frontier is not None and self.frontier is None:
            self.frontier = frontier


def _lattice_unbounded(lattice: Any) -> bool:
    """Can ⊑-ascent on this lattice go on forever?  (No reachable top.)"""
    try:
        top = lattice.top
    except Exception:  # pragma: no cover - defensive
        return True
    return isinstance(top, float) and math.isinf(top)


def component_unbounded(program: "Program", cdb: Any) -> bool:
    """True iff some CDB predicate's cost domain has an unreachable top
    (the precondition of the cost-spiral heuristic)."""
    for predicate in cdb:
        decl = program.decl(predicate)
        if decl.is_cost_predicate and _lattice_unbounded(decl.lattice):
            return True
    return False


class Supervisor:
    """Cooperative resource governor for one solve.

    The solver binds one supervisor per solve and rebinds
    :attr:`base_atoms` / :attr:`watch_spiral` before each component; the
    evaluators call the two check methods:

    * :meth:`poll` — at rule-firing boundaries (and per greedy pop):
      cancellation on every call, the deadline every
      ``_POLL_STRIDE`` calls;
    * :meth:`on_round` — at iteration boundaries, with the round's delta
      statistics: all budgets plus the divergence heuristics.

    Both raise :class:`SolveInterrupt`; neither mutates engine state, so
    an interrupt between them always observes consistent relations.
    """

    __slots__ = (
        "active",
        "budget",
        "cancel",
        "tracer",
        "clock",
        "deadline",
        "started",
        "rounds",
        "cost_updates",
        "base_atoms",
        "watch_spiral",
        "diagnostics",
        "_polls",
        "_spiral_run",
        "_growth_run",
        "_last_total",
        "_warned",
    )

    def __init__(
        self,
        budget: Optional[Budget] = None,
        cancel: Optional[CancelToken] = None,
        *,
        tracer: Tracer = NULL_TRACER,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.budget = budget if budget is not None else Budget()
        self.cancel = cancel
        self.tracer = tracer
        self.clock = clock
        self.active = True
        self.started = clock()
        self.deadline = (
            self.started + self.budget.timeout
            if self.budget.timeout is not None
            else None
        )
        #: Global fixpoint rounds completed so far (all components).
        self.rounds = 0
        #: Cumulative changed-cost (lattice merge) revisions.
        self.cost_updates = 0
        #: Atoms settled in components below the current one (set by the
        #: solver before each component).
        self.base_atoms = 0
        #: Whether the current component can cost-spiral (unbounded
        #: lattice present; set by the solver per component).
        self.watch_spiral = False
        #: Structured MAD7xx runtime diagnostics emitted so far.
        self.diagnostics: List["Diagnostic"] = []
        self._polls = 0
        self._spiral_run = 0
        self._growth_run = 0
        self._last_total: Optional[int] = None
        self._warned: set = set()

    @classmethod
    def disabled(cls) -> "Supervisor":
        """A permanently-inactive supervisor (:data:`NULL_SUPERVISOR`)."""
        supervisor = cls()
        supervisor.active = False
        return supervisor

    # -- component lifecycle (called by the solver) ------------------------------

    def enter_component(
        self, *, base_atoms: int, watch_spiral: bool
    ) -> None:
        """Reset the per-component divergence trackers."""
        self.base_atoms = base_atoms
        self.watch_spiral = watch_spiral
        self._spiral_run = 0
        self._growth_run = 0
        self._last_total = None

    # -- cooperative checks ------------------------------------------------------

    def _check_cancel(
        self, scc: Optional[int], iteration: Optional[int]
    ) -> None:
        token = self.cancel
        if token is not None and token.cancelled:
            reason = token.reason or "cancelled by caller"
            if self.tracer.enabled:
                self.tracer.emit("cancelled", scc=scc, iteration=iteration)
                self.tracer.metrics.counter("supervisor.cancellations").inc()
            raise SolveInterrupt(
                "cancelled", reason, scc=scc, iteration=iteration
            )

    def _check_deadline(
        self, scc: Optional[int], iteration: Optional[int]
    ) -> None:
        if self.deadline is not None and self.clock() > self.deadline:
            reason = (
                f"wall-clock budget of {self.budget.timeout:g}s exhausted"
            )
            self._emit_budget("timeout", self.budget.timeout, scc, iteration)
            raise SolveInterrupt(
                "timeout", reason, scc=scc, iteration=iteration
            )

    def poll(
        self, scc: Optional[int] = None, iteration: Optional[int] = None
    ) -> None:
        """Cheap check at rule-firing boundaries (and per greedy pop)."""
        if not self.active:
            return
        self._check_cancel(scc, iteration)
        self._polls += 1
        if self._polls % _POLL_STRIDE == 0:
            self._check_deadline(scc, iteration)

    def on_round(
        self,
        *,
        scc: int,
        iteration: int,
        new_atoms: int,
        changed_atoms: int,
        total_atoms: int,
    ) -> None:
        """Full budget + divergence check at an iteration boundary.

        ``total_atoms`` is the component's current atom count; the solve
        total adds :attr:`base_atoms`.  Raises :class:`SolveInterrupt`
        when a budget is exhausted or a divergence heuristic trips under
        ``on_divergence="abort"``.
        """
        if not self.active:
            return
        budget = self.budget
        self.rounds += 1
        self.cost_updates += changed_atoms
        self._check_cancel(scc, iteration)
        self._check_deadline(scc, iteration)
        if (
            budget.max_iterations is not None
            and self.rounds >= budget.max_iterations
        ):
            self._emit_budget(
                "iterations", budget.max_iterations, scc, iteration
            )
            raise SolveInterrupt(
                "partial",
                f"fixpoint-round budget of {budget.max_iterations} exhausted",
                scc=scc,
                iteration=iteration,
            )
        solve_total = self.base_atoms + total_atoms
        if budget.max_atoms is not None and solve_total >= budget.max_atoms:
            self._emit_budget("atoms", budget.max_atoms, scc, iteration)
            raise SolveInterrupt(
                "partial",
                f"derived-atom budget of {budget.max_atoms} exhausted "
                f"({solve_total} atoms)",
                scc=scc,
                iteration=iteration,
            )
        if (
            budget.max_cost_updates is not None
            and self.cost_updates >= budget.max_cost_updates
        ):
            self._emit_budget(
                "cost_updates", budget.max_cost_updates, scc, iteration
            )
            raise SolveInterrupt(
                "partial",
                f"cost-update budget of {budget.max_cost_updates} exhausted",
                scc=scc,
                iteration=iteration,
            )
        self._track_divergence(
            scc, iteration, new_atoms, changed_atoms, total_atoms
        )

    # -- divergence heuristics ---------------------------------------------------

    def _track_divergence(
        self,
        scc: int,
        iteration: int,
        new_atoms: int,
        changed_atoms: int,
        total_atoms: int,
    ) -> None:
        window = self.budget.divergence_window
        # Cost spiral: rounds that only revise existing costs, on a
        # component whose lattice admits unbounded ⊑-ascent.
        if self.watch_spiral and changed_atoms > 0 and new_atoms == 0:
            self._spiral_run += 1
        else:
            self._spiral_run = 0
        if self._spiral_run >= window:
            self._flag(
                "cost-spiral",
                scc,
                iteration,
                f"{self._spiral_run} consecutive rounds revised existing "
                f"costs without deriving new atoms on an unbounded cost "
                f"domain — the chain may ascend forever (Example 5.1)",
            )
            self._spiral_run = 0  # re-arm: warn once per window
        # Atom-growth alarm: geometric blow-up of the component's model.
        last = self._last_total
        self._last_total = total_atoms
        if (
            last is not None
            and last >= 64
            and total_atoms >= self.budget.growth_factor * last
        ):
            self._growth_run += 1
        else:
            self._growth_run = 0
        if self._growth_run >= window:
            self._flag(
                "atom-growth",
                scc,
                iteration,
                f"atom count multiplied by ≥{self.budget.growth_factor:g} "
                f"for {self._growth_run} consecutive rounds "
                f"({total_atoms} atoms and climbing)",
            )
            self._growth_run = 0

    def _flag(
        self, slug: str, scc: int, iteration: int, detail: str
    ) -> None:
        """Record one divergence finding; abort when the budget says so."""
        from repro.analysis.diagnostics import make_diagnostic

        diagnostic = make_diagnostic(
            slug, f"component {scc}, round {iteration}: {detail}"
        )
        if slug not in self._warned:
            self._warned.add(slug)
            self.diagnostics.append(diagnostic)
        if self.tracer.enabled:
            self.tracer.emit(
                "divergence_warning",
                code=diagnostic.code,
                scc=scc,
                iteration=iteration,
                detail=detail,
            )
            self.tracer.metrics.counter(
                "supervisor.divergence_warnings"
            ).inc()
        if self.budget.on_divergence == "abort":
            raise SolveInterrupt(
                "diverging",
                f"{diagnostic.code} {slug}: {detail}",
                scc=scc,
                iteration=iteration,
            )

    # -- telemetry ---------------------------------------------------------------

    def _emit_budget(
        self,
        kind: str,
        limit: Optional[float],
        scc: Optional[int],
        iteration: Optional[int],
    ) -> None:
        if self.tracer.enabled:
            self.tracer.emit(
                "budget_exceeded",
                kind=kind,
                limit=limit,
                scc=scc,
                iteration=iteration,
            )
            self.tracer.metrics.counter("supervisor.budget_trips").inc()


#: The shared inactive supervisor — the engine default; unbudgeted hot
#: loops pay one ``supervisor.active`` attribute read per site.
NULL_SUPERVISOR = Supervisor.disabled()
