"""Typed column-major relation storage behind the ``Relation`` API.

A :class:`ColumnarRelation` stores one predicate's extension as
per-argument-position *columns* instead of a set/dict of boxed tuples:

* ``'q'`` — exact machine integers in an ``array('q')`` (``bool`` is
  excluded: it is a distinct value in the model, ``True`` is not ``1``
  for bit-identity purposes, so it takes the boxed fallback);
* ``'d'`` — exact floats in an ``array('d')`` (NaN demotes the column:
  its identity-based membership semantics cannot survive re-boxing);
* ``'s'`` — interned string ids in an ``array('q')``, backed by an
  append-only per-column :class:`_SymbolTable` (shared by reference
  across copies — ids are stable because the table only ever grows);
* ``'o'`` — a plain boxed list, the fallback for columns holding any
  other value kind or a mix of kinds.

A column starts untyped and commits to a kind on its first value; a
later value the kind cannot represent *demotes the whole column* to
boxed — never silently coerced, so the decoded rows are bit-identical
to what the boxed backend stores (``docs/STORAGE.md`` spells out the
rules).  Row membership goes through an open-addressing table of row
ids keyed by the Python hash of the boxed key tuple, so no per-row
tuple objects are retained — that is the memory win.

Everything else — the persistent incremental indexes, the
generation-counted rows cache, apply-or-rollback exception safety,
core-only default-value storage — is *inherited unchanged* from
:class:`~repro.engine.interpretation.Relation`: the mutators here feed
the same ``_on_insert``/``_on_replace`` hooks, so the three evaluators,
the compiled executors and ``plan="sharded"`` run on top without
modification.
"""

from __future__ import annotations

from array import array
from collections.abc import Mapping as MappingABC
from collections.abc import Set as SetABC
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.datalog.errors import CostConsistencyError
from repro.datalog.program import PredicateDecl
from repro.engine.interpretation import Key, Relation

_MASK64 = 0xFFFFFFFFFFFFFFFF
_MIN_TABLE = 8
# Row-id slots are 32-bit: a relation would need 2**31 - 1 rows (and
# tens of GB of column data) before a slot assignment overflows, and
# the array module raises OverflowError rather than truncating there.
_SLOT_TYPE = "i"


class _SymbolTable:
    """Append-only string interning: id ↦ string and back.

    Shared by reference between a column and its copies: ids are
    assigned once and never reused, so divergent copies appending
    different strings still agree on every id either of them stores.
    """

    __slots__ = ("ids", "strings")

    def __init__(self) -> None:
        self.ids: Dict[str, int] = {}
        self.strings: List[str] = []

    def intern(self, value: str) -> int:
        sid = self.ids.get(value)
        if sid is None:
            sid = len(self.strings)
            self.strings.append(value)
            self.ids[value] = sid
        return sid


class _Column:
    """One argument position's values: a typed array or the boxed list."""

    __slots__ = ("kind", "data", "symbols")

    def __init__(self) -> None:
        self.kind = ""  # untyped until the first value arrives
        self.data: Any = None
        self.symbols: Optional[_SymbolTable] = None

    def copy(self) -> "_Column":
        out = _Column()
        out.kind = self.kind
        if self.kind == "o":
            out.data = list(self.data)
        elif self.kind:
            out.data = self.data[:]
        out.symbols = self.symbols  # append-only, safe to share
        return out

    def _commit(self, value: Any) -> None:
        """Pick this column's kind from its first value."""
        if type(value) is int:
            self.kind, self.data = "q", array("q")
        elif type(value) is float and value == value:
            self.kind, self.data = "d", array("d")
        elif type(value) is str:
            self.kind, self.data = "s", array("q")
            self.symbols = _SymbolTable()
        else:
            self.kind, self.data = "o", []

    def _demote(self) -> None:
        """Re-box the whole column (type mismatch; see module docstring)."""
        if self.kind == "s":
            symbols = self.symbols
            assert symbols is not None
            self.data = [symbols.strings[sid] for sid in self.data]
            self.symbols = None
        else:
            self.data = list(self.data)
        self.kind = "o"

    def append(self, value: Any) -> None:
        kind = self.kind
        if not kind:
            self._commit(value)
            kind = self.kind
        if kind == "q":
            if type(value) is int:
                try:
                    self.data.append(value)
                    return
                except OverflowError:
                    pass
            self._demote()
        elif kind == "d":
            if type(value) is float and value == value:
                self.data.append(value)
                return
            self._demote()
        elif kind == "s":
            if type(value) is str:
                assert self.symbols is not None
                self.data.append(self.symbols.intern(value))
                return
            self._demote()
        self.data.append(value)

    def pop(self) -> None:
        """Roll back the most recent append (exception safety)."""
        self.data.pop()
        if not self.data:
            # Back to empty: release the committed kind so a failed
            # first append leaves the column exactly as it started.
            self.kind = ""
            self.data = None
            self.symbols = None

    def get(self, i: int) -> Any:
        if self.kind == "s":
            assert self.symbols is not None
            return self.symbols.strings[self.data[i]]
        return self.data[i]

    def set(self, i: int, value: Any) -> None:
        kind = self.kind
        if kind == "q":
            if type(value) is int:
                try:
                    self.data[i] = value
                    return
                except OverflowError:
                    pass
            self._demote()
        elif kind == "d":
            if type(value) is float and value == value:
                self.data[i] = value
                return
            self._demote()
        elif kind == "s":
            if type(value) is str:
                assert self.symbols is not None
                self.data[i] = self.symbols.intern(value)
                return
            self._demote()
        self.data[i] = value

    def match(self, i: int, value: Any) -> bool:
        """Whether row ``i`` holds ``value`` — by Python equality, so
        cross-type numeric equality (``1 == 1.0 == True``) behaves
        exactly as it does for boxed tuples in a set."""
        kind = self.kind
        if kind == "s":
            assert self.symbols is not None
            try:
                sid = self.symbols.ids.get(value)
            except TypeError:  # unhashable probe can never equal a str
                return False
            return sid is not None and self.data[i] == sid
        if kind == "o":
            stored = self.data[i]
            return stored is value or stored == value
        return bool(self.data[i] == value)


class _TupleView(SetABC):
    """Read-only live view of an ordinary relation's tuples.

    O(1) membership via the row-id table; iteration materialises rows
    on the fly.  Set algebra (``-``, ``&``, ``<=``, ``==``) comes from
    :class:`collections.abc.Set` and yields plain ``set`` results.
    """

    __slots__ = ("_rel",)

    def __init__(self, rel: "ColumnarRelation") -> None:
        self._rel = rel

    @classmethod
    def _from_iterable(cls, it: Any) -> set:
        return set(it)

    def __contains__(self, key: Any) -> bool:
        rel = self._rel
        if (
            rel._cost_col is not None
            or not isinstance(key, tuple)
            or len(key) != rel._key_width
        ):
            return False
        return rel._find(key, hash(key)) >= 0

    def __iter__(self) -> Iterator[Key]:
        rel = self._rel
        if rel._cost_col is not None:
            return iter(())
        return rel.rows()

    def __len__(self) -> int:
        rel = self._rel
        return 0 if rel._cost_col is not None else rel._n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{{{', '.join(map(repr, self))}}}"


class _CostItems:
    """Re-iterable ``(key, value)`` pairs of a columnar cost relation."""

    __slots__ = ("_rel",)

    def __init__(self, rel: "ColumnarRelation") -> None:
        self._rel = rel

    def __len__(self) -> int:
        return len(self._rel)

    def __iter__(self) -> Iterator[Tuple[Key, Any]]:
        rel = self._rel
        cost = rel._cost_col
        if cost is None:
            return
        cols = rel._cols
        for i in range(rel._n):
            yield tuple(col.get(i) for col in cols), cost.get(i)


class _CostView(MappingABC):
    """Read-only live mapping view of a cost relation's core."""

    __slots__ = ("_rel",)

    def __init__(self, rel: "ColumnarRelation") -> None:
        self._rel = rel

    def __getitem__(self, key: Any) -> Any:
        rel = self._rel
        if rel._cost_col is None:
            raise KeyError(key)
        rowid = rel._find(key, hash(key))
        if rowid < 0:
            raise KeyError(key)
        return rel._cost_col.get(rowid)

    def get(self, key: Any, default: Any = None) -> Any:
        rel = self._rel
        if (
            rel._cost_col is None
            or not isinstance(key, tuple)
            or len(key) != rel._key_width
        ):
            return default
        rowid = rel._find(key, hash(key))
        if rowid < 0:
            return default
        return rel._cost_col.get(rowid)

    def __contains__(self, key: Any) -> bool:
        rel = self._rel
        if (
            rel._cost_col is None
            or not isinstance(key, tuple)
            or len(key) != rel._key_width
        ):
            return False
        return rel._find(key, hash(key)) >= 0

    def __iter__(self) -> Iterator[Key]:
        rel = self._rel
        if rel._cost_col is None:
            return
        cols = rel._cols
        for i in range(rel._n):
            yield tuple(col.get(i) for col in cols)

    def __len__(self) -> int:
        rel = self._rel
        return rel._n if rel._cost_col is not None else 0

    def items(self) -> _CostItems:  # type: ignore[override]
        return _CostItems(self._rel)

    def values(self) -> Iterator[Any]:  # type: ignore[override]
        rel = self._rel
        cost = rel._cost_col
        if cost is None:
            return iter(())
        return (cost.get(i) for i in range(rel._n))

    def __eq__(self, other: object) -> Any:
        if other is self:
            return True
        if not isinstance(other, MappingABC):
            return NotImplemented
        if len(self) != len(other):
            return False
        absent = object()
        for key, value in self.items():
            if other.get(key, absent) != value:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pairs = ", ".join(f"{k!r}: {v!r}" for k, v in self.items())
        return f"{{{pairs}}}"


class ColumnarRelation(Relation):
    """A :class:`Relation` whose rows live in typed columns.

    The raw ``tuples``/``costs`` containers are exposed as read-only
    live views; mutation goes through the same
    ``add_tuple``/``set_cost``/``merge_tuples`` API, which feeds the
    inherited index-maintenance hooks.  The whole documented contract —
    persistent incremental indexes, generation-counted rows cache,
    apply-or-rollback exception safety, core-only default storage — is
    preserved (differentially tested against the boxed backend).
    """

    def __init__(self, decl: PredicateDecl) -> None:
        self.decl = decl
        self.generation = 0
        self._indexes: Dict[Tuple[int, ...], Dict[Key, List[Key]]] = {}
        self._rows_cache: Optional[List[Key]] = None
        self._rows_cache_gen = -1
        is_cost = decl.is_cost_predicate
        self._key_width = decl.arity - 1 if is_cost else decl.arity
        self._cols = [_Column() for _ in range(self._key_width)]
        self._cost_col: Optional[_Column] = _Column() if is_cost else None
        self._hashes = array("q")
        self._n = 0
        self._mask = _MIN_TABLE - 1
        self._slots = array(_SLOT_TYPE, [0]) * _MIN_TABLE  # rowid+1; 0=empty
        self._shared = False
        self._tuple_view = _TupleView(self)
        self._cost_view = _CostView(self)

    @classmethod
    def empty(cls, decl: PredicateDecl) -> "ColumnarRelation":
        return cls(decl)

    # -- the boxed containers, as live views -----------------------------------

    @property
    def tuples(self) -> _TupleView:  # type: ignore[override]
        return self._tuple_view

    @property
    def costs(self) -> _CostView:  # type: ignore[override]
        return self._cost_view

    def __len__(self) -> int:
        return self._n

    def copy(self, warm: bool = False) -> "ColumnarRelation":
        """A detached copy — O(1) via copy-on-write.

        The copy *shares* the column arrays and row-id table with the
        original; whichever of the two mutates first re-materialises
        its own private arrays (:meth:`_materialize`).  The solver
        pipeline copies relations freely (EDB seeding, result models,
        rollback snapshots) and most copies are never written, so
        sharing is what keeps the columnar backend's memory at one
        resident copy of the data instead of one per pipeline stage.
        """
        out = ColumnarRelation(self.decl)
        out._cols = self._cols
        out._cost_col = self._cost_col
        out._hashes = self._hashes
        out._n = self._n
        out._mask = self._mask
        out._slots = self._slots
        out._shared = True
        self._shared = True
        if warm:
            out._adopt_hot_state(self)
        return out

    def _materialize(self) -> None:
        """Take private ownership of the (possibly shared) arrays.

        Called by every mutation path before the first write.  The
        sibling that shared the arrays keeps the old ones — its
        ``_shared`` flag stays set, costing it at most one redundant
        materialise if it also mutates later.
        """
        self._cols = [col.copy() for col in self._cols]
        if self._cost_col is not None:
            self._cost_col = self._cost_col.copy()
        self._hashes = self._hashes[:]
        self._slots = self._slots[:]
        self._shared = False

    # -- row-id hash table -------------------------------------------------------

    def _row_matches(self, rowid: int, key: Key) -> bool:
        for col, value in zip(self._cols, key):
            if not col.match(rowid, value):
                return False
        return True

    def _find(self, key: Key, h: int) -> int:
        """The row id holding ``key``, or -1."""
        mask = self._mask
        slots = self._slots
        hashes = self._hashes
        i = h & mask
        perturb = h & _MASK64
        while True:
            slot = slots[i]
            if slot == 0:
                return -1
            rowid = slot - 1
            if hashes[rowid] == h and self._row_matches(rowid, key):
                return rowid
            perturb >>= 5
            i = (5 * i + 1 + perturb) & mask

    def _grow(self) -> None:
        size = (self._mask + 1) * 2
        mask = size - 1
        slots = array(_SLOT_TYPE, [0]) * size
        for rowid in range(self._n):
            h = self._hashes[rowid]
            i = h & mask
            perturb = h & _MASK64
            while slots[i] != 0:
                perturb >>= 5
                i = (5 * i + 1 + perturb) & mask
            slots[i] = rowid + 1
        self._mask = mask
        self._slots = slots

    def _append_row(self, key: Key, h: int, *, cost: Any = None) -> None:
        """Append one row atomically: a failing column append (only user
        value types can fail — the table math cannot) rolls every
        already-appended column back, so the containers stay valid."""
        if self._shared:
            self._materialize()
        appended: List[_Column] = []
        try:
            for col, value in zip(self._cols, key):
                col.append(value)
                appended.append(col)
            if self._cost_col is not None:
                self._cost_col.append(cost)
                appended.append(self._cost_col)
            self._hashes.append(h)
        except BaseException:
            for col in appended:
                col.pop()
            raise
        rowid = self._n
        if (rowid + 1) * 3 >= (self._mask + 1) * 2:
            self._grow()
        mask = self._mask
        slots = self._slots
        i = h & mask
        perturb = h & _MASK64
        while slots[i] != 0:
            perturb >>= 5
            i = (5 * i + 1 + perturb) & mask
        slots[i] = rowid + 1
        self._n = rowid + 1

    # -- mutation (same contract as the boxed base class) -------------------------

    def add_tuple(self, key: Key) -> bool:
        h = hash(key)
        if self._find(key, h) >= 0:
            return False
        self._append_row(key, h)
        try:
            self._on_insert(key)
        except BaseException:
            self.invalidate_indexes()
            raise
        return True

    def set_cost(self, key: Key, value: Any, *, strict: bool = True) -> bool:
        lattice = self.decl.lattice
        assert lattice is not None
        cost_col = self._cost_col
        assert cost_col is not None
        h = hash(key)
        rowid = self._find(key, h)
        if self.decl.has_default and value == lattice.bottom:
            # The default is implicit; storing it would bloat the core.
            if strict and rowid >= 0:
                existing = cost_col.get(rowid)
                if existing != value:
                    raise CostConsistencyError(
                        f"{self.decl.name}{key}: derived both "
                        f"{existing!r} and default {value!r}"
                    )
            return False
        if rowid < 0:
            self._append_row(key, h, cost=value)
            try:
                self._on_insert(key + (value,))
            except BaseException:
                self.invalidate_indexes()
                raise
            return True
        existing = cost_col.get(rowid)
        if existing == value:
            return False
        if strict:
            raise CostConsistencyError(
                f"{self.decl.name}{key}: derived both {existing!r} and "
                f"{value!r} in one T_P application"
            )
        # The lattice lub runs *before* any mutation: a raising join
        # (user-supplied lattice) leaves the relation untouched.
        joined = lattice.join(existing, value)
        if joined == existing:
            return False
        if self._shared:
            self._materialize()
            cost_col = self._cost_col
            assert cost_col is not None
        cost_col.set(rowid, joined)
        try:
            self._on_replace(key + (existing,), key + (joined,))
        except BaseException:
            self.invalidate_indexes()
            raise
        return True

    def merge_tuples(self, keys: Any) -> None:
        # Hashes are computed up front so an iterable (or a key) that
        # raises mid-iteration mutates nothing, matching the base class.
        pending = [(key, hash(key)) for key in keys]
        try:
            for key, h in pending:
                if self._find(key, h) < 0:
                    self._append_row(key, h)
        finally:
            self.invalidate_indexes()

    # -- queries -----------------------------------------------------------------

    def cost_of(self, key: Key) -> Optional[Any]:
        cost_col = self._cost_col
        if cost_col is not None:
            rowid = self._find(key, hash(key))
            if rowid >= 0:
                return cost_col.get(rowid)
        if self.decl.has_default:
            return self.decl.default_value
        return None

    def has_tuple(self, key: Key) -> bool:
        if self._cost_col is not None:
            return False
        return self._find(key, hash(key)) >= 0

    def rows(self) -> Iterator[Tuple[Any, ...]]:
        cols = self._cols
        cost_col = self._cost_col
        if cost_col is not None:
            for i in range(self._n):
                yield tuple(col.get(i) for col in cols) + (cost_col.get(i),)
        else:
            for i in range(self._n):
                yield tuple(col.get(i) for col in cols)

    # -- introspection -----------------------------------------------------------

    def column_kinds(self) -> Tuple[str, ...]:
        """The committed column kinds (``''`` = no value seen yet), the
        cost column last for cost predicates — docs/STORAGE.md's typing
        rules, observable for tests and the repl's ``.storage``."""
        kinds = tuple(col.kind for col in self._cols)
        if self._cost_col is not None:
            kinds += (self._cost_col.kind,)
        return kinds


def columnar_stats(
    interpretation: Any,
) -> Mapping[str, Tuple[int, Tuple[str, ...]]]:
    """Per-predicate ``(rows, column kinds)`` for columnar relations."""
    out: Dict[str, Tuple[int, Tuple[str, ...]]] = {}
    for name, rel in interpretation.relations.items():
        if isinstance(rel, ColumnarRelation):
            out[name] = (len(rel), rel.column_kinds())
    return out
