"""Command-line interface: analyze and solve rule files.

Usage::

    python -m repro solve program.mad [--facts facts.mad] [--method seminaive]
    python -m repro analyze program.mad
    python -m repro lint program.mad [--format json] [--explain]
    python -m repro lint --catalog    # gate the built-ins on their verdicts
    python -m repro examples          # list the built-in paper programs
    python -m repro solve --program shortest-path --facts facts.mad

``lint`` prints coded, source-located diagnostics (``MAD101`` etc., see
docs/LANGUAGE.md) and exits with the maximum severity found: 0 (clean or
notes only), 1 (warnings), 2 (errors).

Rule files use the library's textual syntax (see README); facts files are
rule files containing only ground facts.  Output is the model, one atom
per line, optionally filtered to a predicate with ``--query``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.database import Database
from repro.datalog.errors import ReproError
from repro.programs import ALL_PROGRAMS


def _load_database(args: argparse.Namespace) -> Database:
    db = Database(name="cli")
    if args.program:
        catalog = {p.name: p for p in ALL_PROGRAMS}
        if args.program not in catalog:
            raise ReproError(
                f"unknown built-in program {args.program!r}; "
                f"try: {', '.join(sorted(catalog))}"
            )
        db.load(catalog[args.program].source)
    for path in args.files:
        with open(path, encoding="utf-8") as handle:
            db.load(handle.read())
    if args.facts:
        with open(args.facts, encoding="utf-8") as handle:
            db.load(handle.read())
    return db


def _print_model(result, query: Optional[str]) -> None:
    model = result.model
    names = [query] if query else sorted(model.relations)
    for name in names:
        rel = model.relation(name)
        for row in sorted(rel.rows(), key=repr):
            rendered = ", ".join(map(repr, row))
            print(f"{name}({rendered})")


def cmd_solve(args: argparse.Namespace) -> int:
    db = _load_database(args)
    result = db.solve(
        check=args.check,
        method=args.method,
        max_iterations=args.max_iterations,
    )
    if args.explain:
        from repro.datalog.parser import parse_atom_text

        atom = parse_atom_text(args.explain)
        key = tuple(arg.value for arg in atom.args)  # type: ignore[union-attr]
        print(result.explain(atom.predicate, key))
        return 0
    _print_model(result, args.query)
    print(
        f"% {result.total_iterations} T_P iterations over "
        f"{len(result.components)} components",
        file=sys.stderr,
    )
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    db = _load_database(args)
    report = db.analyze()
    print(report)
    return 0 if report.ok else 1


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.diagnostics import (
        Severity,
        lint_source,
        render_json,
        render_text,
    )

    if args.catalog:
        if args.files or args.program:
            raise ReproError(
                "--catalog lints the built-in programs only; "
                "drop the file/--program arguments or run them separately"
            )
        return _lint_catalog(args)
    sources = []
    if args.program:
        catalog = {p.name: p for p in ALL_PROGRAMS}
        if args.program not in catalog:
            raise ReproError(
                f"unknown built-in program {args.program!r}; "
                f"try: {', '.join(sorted(catalog))}"
            )
        sources.append((args.program, catalog[args.program].source))
    for path in args.files:
        with open(path, encoding="utf-8") as handle:
            sources.append((path, handle.read()))
    if not sources:
        raise ReproError("nothing to lint: give files, --program or --catalog")

    diagnostics = []
    for name, text in sources:
        diagnostics.extend(lint_source(text, name=name))
    if args.format == "json":
        print(render_json(diagnostics))
    else:
        print(render_text(diagnostics, explain=args.explain))
    worst = max((d.severity for d in diagnostics), default=Severity.INFO)
    return int(worst)


def _lint_catalog(args: argparse.Namespace) -> int:
    """Lint every built-in paper program against its expected verdicts."""
    from repro.analysis.diagnostics import expected_mismatches, lint_source

    failures = 0
    rows = []
    for paper_program in ALL_PROGRAMS:
        diagnostics = lint_source(
            paper_program.source, name=paper_program.name
        )
        problems = expected_mismatches(paper_program.expected, diagnostics)
        codes = sorted({d.code for d in diagnostics})
        rows.append(
            {
                "name": paper_program.name,
                "codes": codes,
                "ok": not problems,
                "mismatches": problems,
            }
        )
        if problems:
            failures += 1
    if args.format == "json":
        import json as _json

        print(_json.dumps({"programs": rows, "failures": failures}, indent=2))
    else:
        for row in rows:
            status = "ok" if row["ok"] else "MISMATCH"
            rendered = ", ".join(row["codes"]) or "clean"
            print(f"{row['name']:32s} {status:8s} [{rendered}]")
            for problem in row["mismatches"]:
                print(f"    {problem}")
        print(
            f"% {len(rows) - failures}/{len(rows)} programs lint as the "
            f"paper classifies them"
        )
    return 2 if failures else 0


def cmd_examples(_args: argparse.Namespace) -> int:
    for paper_program in ALL_PROGRAMS:
        print(f"{paper_program.name:30s} {paper_program.reference}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Monotonic aggregation in deductive databases "
        "(Ross & Sagiv, PODS 1992)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "files", nargs="*", help="rule files in the library's syntax"
        )
        p.add_argument(
            "--program",
            help="start from a built-in paper program (see 'examples')",
        )
        p.add_argument("--facts", help="extra facts file")

    solve = sub.add_parser("solve", help="compute the iterated minimal model")
    add_common(solve)
    solve.add_argument(
        "--method",
        choices=["naive", "seminaive", "greedy"],
        default="naive",
    )
    solve.add_argument(
        "--check",
        choices=["strict", "lenient", "none"],
        default="strict",
    )
    solve.add_argument("--max-iterations", type=int, default=100_000)
    solve.add_argument("--query", help="print only this predicate")
    solve.add_argument(
        "--explain",
        help="derivation tree for one atom, e.g. \"s(a, c)\" "
        "(key arguments only for cost predicates)",
    )
    solve.set_defaults(handler=cmd_solve)

    analyze = sub.add_parser(
        "analyze", help="run the static pipeline (Defs 2.5, 2.10, 4.5)"
    )
    add_common(analyze)
    analyze.set_defaults(handler=cmd_analyze)

    lint = sub.add_parser(
        "lint",
        help="coded diagnostics (MAD1xx safety, MAD2xx conflicts, "
        "MAD3xx admissibility, ...); exit code = max severity",
    )
    lint.add_argument(
        "files", nargs="*", help="rule files in the library's syntax"
    )
    lint.add_argument(
        "--program",
        help="lint a built-in paper program (see 'examples')",
    )
    lint.add_argument(
        "--catalog",
        action="store_true",
        help="lint every built-in paper program and fail unless the "
        "findings match the paper's own classification",
    )
    lint.add_argument(
        "--format", choices=["text", "json"], default="text"
    )
    lint.add_argument(
        "--explain",
        action="store_true",
        help="append the violated definition and paper reference to "
        "each finding",
    )
    lint.set_defaults(handler=cmd_lint)

    examples = sub.add_parser("examples", help="list built-in paper programs")
    examples.set_defaults(handler=cmd_examples)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
