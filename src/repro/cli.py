"""Command-line interface: analyze and solve rule files.

Usage::

    python -m repro solve program.mad [--facts facts.mad] [--method auto]
    python -m repro solve program.mad --trace out.jsonl --stats
    python -m repro profile program.mad [--top 10]
    python -m repro metrics program.mad [--format prometheus]
    python -m repro explain program.mad "s(a, c)"
    python -m repro validate-trace out.jsonl
    python -m repro postmortem repro-postmortem.jsonl
    python -m repro trend BENCH_*.json
    python -m repro analyze program.mad
    python -m repro optimize program.mad
    python -m repro shard-plan program.mad [--format json]
    python -m repro lint program.mad [--format json] [--explain]
    python -m repro lint program.mad --fix [--diff | --check]
    python -m repro lint --catalog    # gate the built-ins on their verdicts
    python -m repro examples          # list the built-in paper programs
    python -m repro solve --program shortest-path --facts facts.mad

``lint`` prints coded, source-located diagnostics (``MAD101`` etc., see
docs/LANGUAGE.md) and exits with the maximum severity found: 0 (clean or
notes only), 1 (warnings), 2 (errors).  ``lint --fix`` applies the
machine-applicable repairs attached to mechanical diagnostics in place
(``--diff`` previews, ``--check`` only reports whether edits would be
made — for CI).

A lone ``-`` as a file argument reads rule text from stdin (``lint``
and ``solve``); with ``--fix`` the repaired text goes to stdout.

Rule files use the library's textual syntax (see README); facts files are
rule files containing only ground facts.  Output is the model, one atom
per line, optionally filtered to a predicate with ``--query``.

Telemetry surfaces (docs/OBSERVABILITY.md): ``solve --trace out.jsonl``
streams the versioned event schema as JSONL, ``solve --stats`` prints
per-SCC / per-rule tables to stderr, ``profile`` ranks rules and
predicates by cumulative executor time with convergence sparklines, and
``validate-trace`` checks trace files against the schema (any known
version v1..current).  ``metrics`` solves once under the tracer and
prints the solve's mergeable metric instruments — counters, gauges and
log-linear histograms with p50/p95/p99 — as text, JSON, or Prometheus
exposition.  Every traced solve carries a flight recorder (a bounded
ring of the last events); when a solve ends abnormally the ring is
dumped to ``--flight PATH`` (default ``repro-postmortem.jsonl``) and
``postmortem`` renders the debrief.  ``trend`` aggregates a committed
``BENCH_*.json`` trajectory into per-workload time series with
regression flags (docs/PERFORMANCE.md).

Optimizer surfaces (docs/OPTIMIZATION.md): ``optimize`` prints the
aggregate-pushdown verdicts (MAD8xx) to stderr and the rewritten
program to stdout; ``solve``/``profile``/``explain``/``bench`` take
``--pushdown off`` to disable the same plan-layer rewrite (the model is
identical either way).

Parallelism surfaces (docs/PARALLELISM.md): ``shard-plan`` prints the
per-component shard-safety verdicts (MAD9xx) with their full witness
chains; ``solve --plan sharded`` evaluates analyzer-certified components
hash-partitioned across worker processes (``--shards`` / ``--workers``),
falling back per component — with the reason on the telemetry stream —
whenever the proof does not go through.  The model is bit-identical to
the sequential plans.

Robustness surfaces (docs/ROBUSTNESS.md): ``solve --timeout`` /
``--max-iterations`` / ``--max-atoms`` budget the fixpoint and degrade
to a sound partial model instead of spinning; ``--checkpoint out.json``
saves a resumable checkpoint when a run is interrupted and
``--resume out.json`` continues it; ``--on-divergence abort`` turns the
MAD7xx divergence heuristics from warnings into a graceful stop.  A
first Ctrl-C cancels cooperatively (partial model + checkpoint); a
second one falls through to the default handler.

Exit codes (all commands except ``lint``, which exits with the maximum
diagnostic severity as documented above):

======  =========================================================
0       success
1       usage error (bad flags, unknown built-in, unreadable file)
2       the program was rejected (parse error, MAD diagnostics,
        failed admissibility/cost-consistency checks)
3       runtime error while evaluating
4       a budget interrupted the solve (timeout / cancellation /
        divergence abort / iteration or atom cap) — the partial
        model is printed and a checkpoint saved when requested
======  =========================================================
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.database import Database
from repro.data.loader import DataLoadError
from repro.datalog.errors import (
    CostConsistencyError,
    ParseError,
    ProgramError,
    ReproError,
)
from repro.programs import ALL_PROGRAMS

EXIT_OK = 0
EXIT_USAGE = 1
EXIT_DIAGNOSTICS = 2
EXIT_RUNTIME = 3
EXIT_BUDGET = 4

#: Evaluator hard cap when a budget supervises the run: the budget's
#: graceful ``status="partial"`` stop should win, not NonTerminationError.
_UNCAPPED_ITERATIONS = 10**9


class CliUsageError(ReproError):
    """A command-line level mistake (exit ``EXIT_USAGE``), as opposed to
    a problem with the program text being analyzed or solved."""


def _read_source(path: str) -> str:
    """File contents; a lone ``-`` reads rule text from stdin."""
    if path == "-":
        return sys.stdin.read()
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def _load_database(args: argparse.Namespace) -> Database:
    name = args.program or (args.files[0] if args.files else "cli")
    db = Database(name=name)
    if args.program:
        catalog = {p.name: p for p in ALL_PROGRAMS}
        if args.program not in catalog:
            raise CliUsageError(
                f"unknown built-in program {args.program!r}; "
                f"try: {', '.join(sorted(catalog))}"
            )
        db.load(catalog[args.program].source)
    for path in args.files:
        db.load(_read_source(path))
    if args.facts:
        db.load(_read_source(args.facts))
    return db


def _print_model(result, query: Optional[str]) -> None:
    model = result.model
    names = [query] if query else sorted(model.relations)
    for name in names:
        rel = model.relation(name)
        for row in sorted(rel.rows(), key=repr):
            rendered = ", ".join(map(repr, row))
            print(f"{name}({rendered})")


def _make_tracer(args: argparse.Namespace):
    """``(tracer, flight recorder)`` when ``--trace`` / ``--stats`` /
    ``--flight`` asks for telemetry, else ``(None, None)``.

    Every CLI tracer carries a :class:`repro.obs.FlightRecorder` ring
    sink; ``cmd_solve`` dumps it when the solve ends abnormally."""
    if not (
        getattr(args, "trace", None)
        or getattr(args, "stats", False)
        or getattr(args, "flight", None)
    ):
        return None, None
    from repro.obs import FlightRecorder, JsonlSink, Tracer

    sinks = [JsonlSink(args.trace)] if args.trace else []
    flight = FlightRecorder(getattr(args, "flight_size", None) or 256)
    sinks.append(flight)
    return Tracer(*sinks), flight


def _dump_flight(flight, args, *, status: str, reason: str) -> None:
    """Write the flight-recorder postmortem and say where it went.

    Without an explicit ``--flight PATH`` the dump goes to a
    collision-safe generated path (timestamp + pid + sequence), so
    concurrent solves in one directory never clobber each other's
    postmortems."""
    from repro.obs import default_dump_path

    path = getattr(args, "flight", None) or default_dump_path()
    flight.dump(path, status=status, reason=reason)
    print(
        f"% flight recorder dump written to {path} "
        f"(render with: repro postmortem {path})",
        file=sys.stderr,
    )


def _make_budget(args: argparse.Namespace):
    """A :class:`repro.engine.supervisor.Budget` from the solve flags,
    or ``None`` when no budget flag was given (unsupervised fast path)."""
    if (
        args.timeout is None
        and args.max_iterations is None
        and args.max_atoms is None
        and args.on_divergence == "warn"
    ):
        return None
    from repro.engine.supervisor import Budget

    return Budget(
        timeout=args.timeout,
        max_iterations=args.max_iterations,
        max_atoms=args.max_atoms,
        on_divergence=args.on_divergence,
    )


def cmd_solve(args: argparse.Namespace) -> int:
    from repro.engine.supervisor import CancelToken, sigint_cancels

    db = _load_database(args)
    tracer, flight = _make_tracer(args)
    budget = _make_budget(args)
    resume = None
    if args.resume:
        from repro.engine.checkpoint import Checkpoint

        resume = Checkpoint.load(args.resume)
    cancel = CancelToken()
    hard_cap = _UNCAPPED_ITERATIONS if budget is not None else 100_000
    try:
        with sigint_cancels(cancel):
            result = db.solve(
                check=args.check,
                method=args.method,
                max_iterations=hard_cap,
                plan=args.plan,
                pushdown=args.pushdown,
                storage=args.storage,
                shards=args.shards,
                workers=args.workers,
                tracer=tracer,
                budget=budget,
                cancel=cancel,
                resume=resume,
            )
    except ReproError as exc:
        # The ring holds the solve's final moments — dump it before the
        # error propagates so the crash is debriefable offline.
        if flight is not None:
            _dump_flight(flight, args, status="error", reason=str(exc))
        raise
    finally:
        if tracer is not None:
            tracer.close()
    for diagnostic in result.runtime_diagnostics:
        print(diagnostic.format(), file=sys.stderr)
    interrupted = result.status != "complete"
    if args.explain and not interrupted:
        from repro.datalog.parser import parse_atom_text

        atom = parse_atom_text(args.explain)
        key = tuple(arg.value for arg in atom.args)  # type: ignore[union-attr]
        print(result.explain(atom.predicate, key))
        return EXIT_OK
    _print_model(result, args.query)
    for predicates, used, iterations in result.method_by_component():
        rendered = ", ".join(predicates)
        print(
            f"% scc {{{rendered}}}: {used} ({iterations} iterations)",
            file=sys.stderr,
        )
    print(
        f"% {result.total_iterations} T_P iterations over "
        f"{len(result.components)} components",
        file=sys.stderr,
    )
    if args.stats and result.telemetry is not None:
        print(result.telemetry.render_stats(), file=sys.stderr)
    if args.trace:
        print(f"% trace written to {args.trace}", file=sys.stderr)
    if interrupted:
        detail = f": {result.reason}" if result.reason else ""
        print(
            f"% solve interrupted ({result.status}{detail}); the model "
            f"above is a sound lower bound",
            file=sys.stderr,
        )
        if flight is not None:
            _dump_flight(
                flight, args, status=result.status, reason=result.reason or ""
            )
        if args.checkpoint and result.checkpoint is not None:
            result.checkpoint.save(args.checkpoint)
            print(
                f"% checkpoint written to {args.checkpoint} "
                f"(resume with --resume)",
                file=sys.stderr,
            )
        return EXIT_BUDGET
    return EXIT_OK


def cmd_profile(args: argparse.Namespace) -> int:
    """Solve once under a tracer and print the ranked hot-rule report."""
    from repro.obs import JsonlSink, Tracer

    db = _load_database(args)
    sinks = [JsonlSink(args.trace)] if args.trace else []
    tracer = Tracer(*sinks)
    try:
        result = db.solve(
            check=args.check,
            method=args.method,
            max_iterations=args.max_iterations,
            plan=args.plan,
            pushdown=args.pushdown,
            storage=args.storage,
            shards=args.shards,
            workers=args.workers,
            tracer=tracer,
        )
    finally:
        tracer.close()
    assert result.telemetry is not None
    print(result.telemetry.render_profile(top=args.top))
    if args.trace:
        print(f"% trace written to {args.trace}", file=sys.stderr)
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Solve and render the derivation tree of one model atom."""
    from repro.datalog.parser import parse_atom_text

    # The last positional is the atom; everything before it is rule files.
    args.files = args.args[:-1]
    atom_text = args.args[-1]
    db = _load_database(args)
    result = db.solve(
        check=args.check,
        method=args.method,
        max_iterations=args.max_iterations,
        plan=args.plan,
        pushdown=args.pushdown,
    )
    atom = parse_atom_text(atom_text)
    key = tuple(arg.value for arg in atom.args)  # type: ignore[union-attr]
    print(result.explain(atom.predicate, key, max_depth=args.max_depth))
    return 0


def cmd_validate_trace(args: argparse.Namespace) -> int:
    """Validate JSONL trace files against the event schema.

    Any known schema version (v1..current) passes; unknown versions fail
    with an error naming the version found.  The "ok" line reports the
    version the file actually declares, not the library's newest.
    """
    from repro.obs import SCHEMA_VERSION, jsonl_version, validate_jsonl

    failures = 0
    for path in args.files:
        problems = validate_jsonl(path)
        if problems:
            failures += 1
            print(f"{path}: INVALID")
            for problem in problems:
                print(f"  {problem}")
        else:
            version = jsonl_version(path)
            rendered = f"v{version}" if version else f"v{SCHEMA_VERSION}"
            print(f"{path}: ok (schema {rendered})")
    return 1 if failures else 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Solve once under the tracer and print the metric instruments.

    The registry covers the whole solve — for ``--plan sharded`` the
    shard workers' instruments are merged in at the barrier, so the
    histograms and counters include worker-side work at full fidelity.
    """
    from repro.obs import Tracer

    db = _load_database(args)
    tracer = Tracer()
    try:
        result = db.solve(
            check=args.check,
            method=args.method,
            max_iterations=args.max_iterations,
            plan=args.plan,
            pushdown=args.pushdown,
            storage=args.storage,
            shards=args.shards,
            workers=args.workers,
            tracer=tracer,
        )
    finally:
        tracer.close()
    if args.format == "json":
        import json as _json

        print(_json.dumps(tracer.metrics.snapshot(), indent=2, sort_keys=True))
    elif args.format == "prometheus":
        print(tracer.metrics.render_prometheus())
    else:
        print(tracer.metrics.render_text())
    if result.status != "complete":
        print(
            f"% solve interrupted ({result.status}); metrics cover the "
            f"work done before the stop",
            file=sys.stderr,
        )
    return EXIT_OK


def cmd_postmortem(args: argparse.Namespace) -> int:
    """Render a flight-recorder dump's human-readable debrief."""
    from repro.obs import load_dump, render_postmortem

    try:
        header, events = load_dump(args.file)
    except ValueError as exc:
        raise CliUsageError(str(exc)) from exc
    print(render_postmortem(header, events, tail=args.tail))
    return EXIT_OK


def cmd_trend(args: argparse.Namespace) -> int:
    """Aggregate a ``BENCH_*.json`` trajectory into per-workload series.

    Exit code is 0 even when steps regress (the table flags them);
    ``--strict`` turns flagged regressions into exit 1 for CI gates.
    """
    import glob
    import os

    from repro.bench import (
        bench_report_order,
        collect_trend,
        render_trend,
        trend_regressions,
    )

    paths = list(args.files)
    if not paths:
        paths = glob.glob(os.path.join(args.dir, "BENCH_*.json"))
    if args.select != "all":
        quick = args.select == "quick"
        paths = [
            p for p in paths if ("_quick" in os.path.basename(p)) == quick
        ]
    if not paths:
        raise CliUsageError(
            f"no bench reports found (looked for BENCH_*.json in "
            f"{args.dir!r}); run 'repro bench --out BENCH_N.json' first"
        )
    trend = collect_trend(bench_report_order(paths))
    if args.format == "json":
        import json as _json

        print(_json.dumps(trend, indent=2, sort_keys=True))
    else:
        print(render_trend(trend, tolerance=args.tolerance))
    if args.strict and trend_regressions(trend, tolerance=args.tolerance):
        return 1
    return EXIT_OK


def cmd_analyze(args: argparse.Namespace) -> int:
    db = _load_database(args)
    report = db.analyze()
    print(report)
    return EXIT_OK if report.ok else EXIT_DIAGNOSTICS


def cmd_optimize(args: argparse.Namespace) -> int:
    """Print the aggregate-pushdown rewrite of a program.

    Per-occurrence MAD8xx verdicts go to stderr; the rewritten program
    (identical to the input when nothing applies) goes to stdout as
    re-parseable rule text.  This is exactly the rewrite ``solve``
    applies internally unless ``--pushdown off`` is given.
    """
    from repro.analysis.premap import (
        analyze_premappability,
        apply_pushdown,
        render_program,
    )

    db = _load_database(args)
    program = db.program
    report = analyze_premappability(program)
    if report.verdicts:
        for verdict in report.verdicts:
            print(f"% {verdict}", file=sys.stderr)
    else:
        print("% no recursive aggregate occurrences", file=sys.stderr)
    result = apply_pushdown(program, report)
    if not result.changed:
        print("% no applicable pushdown; program unchanged", file=sys.stderr)
    print(render_program(result.program))
    return EXIT_OK


def cmd_shard_plan(args: argparse.Namespace) -> int:
    """Print per-component shard-safety verdicts (docs/PARALLELISM.md).

    Text mode shows each component's status line plus the full witness
    chain and merge-algebra verdicts; ``--format json`` emits a
    machine-readable array, one object per component.  This is exactly
    the analysis ``solve --plan sharded`` consults before forking.
    """
    import json as json_module

    from repro.analysis.sharding import analyze_sharding

    db = _load_database(args)
    report = analyze_sharding(db.program)
    if args.format == "json":
        payload = []
        for verdict in report.components:
            payload.append(
                {
                    "predicates": sorted(verdict.component.cdb),
                    "recursive": bool(verdict.component.internal_kinds),
                    "status": verdict.status,
                    "key": (
                        {
                            p: i
                            for p, i in sorted(
                                verdict.key.positions.items()
                            )
                        }
                        if verdict.key is not None
                        else None
                    ),
                    "witness": verdict.witness,
                    "witnesses": [
                        {
                            "condition": w.condition,
                            "detail": w.detail,
                            "ok": w.ok,
                        }
                        for w in verdict.witnesses
                    ],
                    "rewrites": list(verdict.rewrites),
                }
            )
        print(json_module.dumps(payload, indent=2))
    else:
        print(report.render())
    return EXIT_OK


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.diagnostics import (
        Severity,
        lint_source,
        render_json,
        render_text,
    )

    if args.catalog:
        if args.files or args.program:
            raise CliUsageError(
                "--catalog lints the built-in programs only; "
                "drop the file/--program arguments or run them separately"
            )
        return _lint_catalog(args)
    sources = []
    if args.program:
        catalog = {p.name: p for p in ALL_PROGRAMS}
        if args.program not in catalog:
            raise CliUsageError(
                f"unknown built-in program {args.program!r}; "
                f"try: {', '.join(sorted(catalog))}"
            )
        sources.append((args.program, catalog[args.program].source))
    for path in args.files:
        sources.append((path, _read_source(path)))
    if not sources:
        raise CliUsageError(
            "nothing to lint: give files, --program or --catalog"
        )

    if args.fix or args.diff or args.check:
        if args.program:
            raise CliUsageError(
                "--fix edits files in place; it cannot repair a "
                "built-in program"
            )
        return _lint_fix(args, sources)

    diagnostics = []
    for name, text in sources:
        diagnostics.extend(lint_source(text, name=name))
    if args.format == "json":
        print(render_json(diagnostics))
    else:
        print(render_text(diagnostics, explain=args.explain))
    worst = max((d.severity for d in diagnostics), default=Severity.INFO)
    return int(worst)


def _lint_fix(args: argparse.Namespace, sources) -> int:
    """``lint --fix`` / ``--diff`` / ``--check`` over ``sources``.

    * default: rewrite each file in place (stdin → stdout) and exit with
      the maximum severity remaining in the *fixed* text;
    * ``--diff``: print a unified diff instead of writing;
    * ``--check``: write nothing; exit 1 iff any file would change
      (the CI fix-point gate).
    """
    from repro.analysis.diagnostics import Severity
    from repro.analysis.fixes import fix_text, render_diff

    worst = Severity.INFO
    would_change = False
    for name, text in sources:
        result = fix_text(text, name=name)
        would_change = would_change or result.changed
        for d in result.remaining:
            if d.severity > worst:
                worst = d.severity
        if args.check:
            if result.changed:
                print(f"{name}: {len(result.applied)} fix(es) available")
                for title in result.applied:
                    print(f"    {title}")
            continue
        if args.diff:
            if result.changed:
                print(render_diff(result, name), end="")
            continue
        if result.changed:
            if name == "-":
                sys.stdout.write(result.text)
            else:
                with open(name, "w", encoding="utf-8") as handle:
                    handle.write(result.text)
            print(
                f"{name}: applied {len(result.applied)} fix(es)",
                file=sys.stderr,
            )
        elif name == "-":
            sys.stdout.write(result.text)
    if args.check:
        return 1 if would_change else 0
    return int(worst)


def _lint_catalog(args: argparse.Namespace) -> int:
    """Lint every built-in paper program against its expected verdicts."""
    from repro.analysis.diagnostics import expected_mismatches, lint_source

    failures = 0
    rows = []
    for paper_program in ALL_PROGRAMS:
        diagnostics = lint_source(
            paper_program.source, name=paper_program.name
        )
        problems = expected_mismatches(paper_program.expected, diagnostics)
        codes = sorted({d.code for d in diagnostics})
        rows.append(
            {
                "name": paper_program.name,
                "codes": codes,
                "ok": not problems,
                "mismatches": problems,
            }
        )
        if problems:
            failures += 1
    if args.format == "json":
        import json as _json

        print(_json.dumps({"programs": rows, "failures": failures}, indent=2))
    else:
        for row in rows:
            status = "ok" if row["ok"] else "MISMATCH"
            rendered = ", ".join(row["codes"]) or "clean"
            print(f"{row['name']:32s} {status:8s} [{rendered}]")
            for problem in row["mismatches"]:
                print(f"    {problem}")
        print(
            f"% {len(rows) - failures}/{len(rows)} programs lint as the "
            f"paper classifies them"
        )
    return 2 if failures else 0


def cmd_examples(_args: argparse.Namespace) -> int:
    for paper_program in ALL_PROGRAMS:
        print(f"{paper_program.name:30s} {paper_program.reference}")
    return 0


def cmd_repl(args: argparse.Namespace) -> int:
    """Line-oriented shell over a Database; pipeable for smoke scripts."""
    from repro.repl import run_repl

    db = _load_database(args)
    return run_repl(db, storage=args.storage, method=args.method)


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the resilient solve service (docs/SERVING.md).

    Hosts one named database per ``NAME=FILE`` argument (or per file,
    named by its stem) plus any ``--program`` built-ins.  Serves until
    SIGTERM/SIGINT, then drains: readiness flips, new solves are
    refused, in-flight solves get ``--drain-grace`` seconds and are
    then cancelled cooperatively (each responds with a resumable
    checkpoint reference) before the process exits 0.
    """
    import asyncio
    import os
    import signal

    from repro.serve import HostedDatabase, ServeSettings, SolveServer

    databases = {}

    def _host(name: str, source: str) -> None:
        if name in databases:
            raise CliUsageError(f"duplicate database name {name!r}")
        db = Database(name=name)
        db.load(source)
        databases[name] = HostedDatabase(name, db)

    for spec in args.databases:
        if "=" in spec:
            name, _, path = spec.partition("=")
        else:
            name, path = os.path.splitext(os.path.basename(spec))[0], spec
        _host(name, _read_source(path))
    for program in args.program or []:
        catalog = {p.name: p for p in ALL_PROGRAMS}
        if program not in catalog:
            raise CliUsageError(
                f"unknown built-in program {program!r}; "
                f"try: {', '.join(sorted(catalog))}"
            )
        _host(program, catalog[program].source)
    if not databases:
        raise CliUsageError(
            "nothing to serve: give rule files (NAME=FILE) or --program"
        )

    server = SolveServer(
        databases,
        ServeSettings(
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            queue_depth=args.queue_depth,
            default_timeout=args.timeout,
            max_timeout=args.max_timeout,
            drain_grace=args.drain_grace,
            flight_size=args.flight_size,
            flight_dir=args.flight_dir,
            checkpoint_dir=args.checkpoint_dir or None,
            default_method=args.method,
            default_plan=args.plan,
            storage=args.storage,
        ),
    )

    async def _serve() -> None:
        await server.start()
        loop = asyncio.get_running_loop()
        # SIGTERM and SIGINT both begin a graceful drain; the handler is
        # idempotent, so a second signal during the drain is harmless.
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, server.begin_drain)
        print(
            f"% serving {', '.join(sorted(databases))} on "
            f"http://{args.host}:{server.port} "
            f"(max {args.max_inflight} in flight, queue "
            f"{args.queue_depth}; SIGTERM drains)",
            file=sys.stderr,
        )
        if args.port_file:
            with open(args.port_file, "w", encoding="utf-8") as handle:
                handle.write(f"{server.port}\n")
        try:
            await server.run_until_shutdown()
        finally:
            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.remove_signal_handler(signum)
        print("% drained; exiting", file=sys.stderr)

    asyncio.run(_serve())
    return EXIT_OK


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        compare_reports,
        load_report,
        run_suite,
        write_report,
    )

    def progress(name: str, record) -> None:
        stats = record["index_stats"]
        hitmiss = (
            f"idx hit/miss={stats['hits']}/{stats['misses']}"
            if stats
            else f"status={record.get('status', 'complete')}"
        )
        print(
            f"{name:24s} n={record['size']:<4d} {record['wall_s']:8.4f}s  "
            f"rounds={record['rounds']:<6d} atoms={record['atoms']:<7d} "
            f"{hitmiss}",
            file=sys.stderr,
        )

    from repro.engine.supervisor import CancelToken, sigint_cancels

    cancel = CancelToken()
    try:
        # SIGINT/SIGTERM cancel the batch run cooperatively: the suite
        # stops between repetitions and the partial report (marked
        # "cancelled") is still written/printed below.
        with sigint_cancels(cancel):
            report = run_suite(
                quick=args.quick,
                plan=args.plan,
                pushdown=args.pushdown,
                storage=args.storage,
                repeat=args.repeat,
                only=args.workload or None,
                progress=progress,
                timeout=args.timeout,
                cancel=cancel,
            )
    except ValueError as exc:
        raise CliUsageError(str(exc)) from exc
    if report.get("cancelled"):
        print("% bench run cancelled; partial report", file=sys.stderr)
    if args.out:
        write_report(report, args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        import json as _json

        print(_json.dumps(report, indent=2, sort_keys=True))
    if report.get("cancelled"):
        return EXIT_BUDGET
    if args.compare:
        problems = compare_reports(
            load_report(args.compare),
            report,
            tolerance=args.tolerance,
            mem_tolerance=args.mem_tolerance,
        )
        if problems:
            for problem in problems:
                print(f"bench regression: {problem}", file=sys.stderr)
            return 1
        print(
            f"within {args.tolerance:g}x of {args.compare}", file=sys.stderr
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Monotonic aggregation in deductive databases "
        "(Ross & Sagiv, PODS 1992)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "files", nargs="*", help="rule files in the library's syntax"
        )
        p.add_argument(
            "--program",
            help="start from a built-in paper program (see 'examples')",
        )
        p.add_argument("--facts", help="extra facts file")

    solve = sub.add_parser("solve", help="compute the iterated minimal model")
    add_common(solve)
    solve.add_argument(
        "--method",
        choices=["naive", "seminaive", "greedy", "auto"],
        default="naive",
        help="evaluation mode; 'auto' picks per component from the "
        "classification pass",
    )
    solve.add_argument(
        "--check",
        choices=["strict", "lenient", "none"],
        default="strict",
    )
    solve.add_argument(
        "--max-iterations",
        type=int,
        default=None,
        help="budget: stop gracefully (exit 4, status 'partial') after "
        "this many fixpoint rounds per component",
    )
    solve.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="budget: wall-clock deadline for the whole solve; on expiry "
        "the sound partial model is printed and exit code is 4",
    )
    solve.add_argument(
        "--max-atoms",
        type=int,
        default=None,
        help="budget: cap on total derived atoms across the model",
    )
    solve.add_argument(
        "--on-divergence",
        choices=["warn", "abort"],
        default="warn",
        help="MAD7xx divergence heuristics: warn on stderr (default) or "
        "abort gracefully with status 'diverging' (exit 4)",
    )
    solve.add_argument(
        "--checkpoint",
        metavar="OUT.json",
        help="when a budget or Ctrl-C interrupts the solve, save a "
        "resumable checkpoint here (see docs/ROBUSTNESS.md)",
    )
    solve.add_argument(
        "--resume",
        metavar="CKPT.json",
        help="resume an interrupted solve from a checkpoint saved with "
        "--checkpoint; the final model equals an uninterrupted run's",
    )
    solve.add_argument(
        "--plan",
        choices=["smart", "off", "sharded"],
        default="smart",
        help="join-ordering mode of the compiled executor; 'off' keeps "
        "the legacy schedule order; 'sharded' hash-partitions "
        "analyzer-certified components across worker processes "
        "(docs/PARALLELISM.md)",
    )
    solve.add_argument(
        "--shards",
        type=int,
        default=None,
        help="with --plan sharded: hash partitions per component "
        "(default: 4x workers, min 8)",
    )
    solve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="with --plan sharded: worker processes (default: cpu count)",
    )
    solve.add_argument(
        "--pushdown",
        choices=["auto", "off"],
        default="auto",
        help="aggregate-pushdown optimization (docs/OPTIMIZATION.md); "
        "'off' evaluates the program as written — the model is "
        "identical either way",
    )
    solve.add_argument(
        "--storage",
        choices=["boxed", "columnar"],
        default="boxed",
        help="relation backend (docs/STORAGE.md): 'columnar' stores "
        "typed column arrays instead of boxed dict/set containers — "
        "the model is bit-identical either way",
    )
    solve.add_argument("--query", help="print only this predicate")
    solve.add_argument(
        "--explain",
        help="derivation tree for one atom, e.g. \"s(a, c)\" "
        "(key arguments only for cost predicates)",
    )
    solve.add_argument(
        "--trace",
        metavar="OUT.jsonl",
        help="stream schema'd telemetry events to this JSONL file "
        "(see docs/OBSERVABILITY.md)",
    )
    solve.add_argument(
        "--stats",
        action="store_true",
        help="print per-SCC / per-rule statistics to stderr after solving",
    )
    solve.add_argument(
        "--flight",
        metavar="OUT.jsonl",
        help="flight-recorder dump path for abnormal endings (budget / "
        "cancellation / divergence / crash); giving the flag enables "
        "telemetry even without --trace/--stats.  Default path when "
        "traced: a collision-safe generated name "
        "(repro-postmortem-<stamp>-<pid>.jsonl)",
    )
    solve.add_argument(
        "--flight-size",
        type=int,
        default=256,
        metavar="N",
        help="flight-recorder ring capacity: how many trailing events a "
        "postmortem dump retains (default 256)",
    )
    solve.set_defaults(handler=cmd_solve)

    profile = sub.add_parser(
        "profile",
        help="solve under the tracer and print ranked hot-rule / "
        "hot-predicate tables with per-SCC convergence sparklines",
    )
    add_common(profile)
    profile.add_argument(
        "--method",
        choices=["naive", "seminaive", "greedy", "auto"],
        default="auto",
        help="evaluation mode (default: auto — profile what production "
        "would run)",
    )
    profile.add_argument(
        "--check",
        choices=["strict", "lenient", "none"],
        default="strict",
    )
    profile.add_argument("--max-iterations", type=int, default=100_000)
    profile.add_argument(
        "--plan", choices=["smart", "off", "sharded"], default="smart"
    )
    profile.add_argument("--shards", type=int, default=None)
    profile.add_argument("--workers", type=int, default=None)
    profile.add_argument(
        "--pushdown", choices=["auto", "off"], default="auto"
    )
    profile.add_argument(
        "--storage", choices=["boxed", "columnar"], default="boxed"
    )
    profile.add_argument(
        "--top",
        type=int,
        default=10,
        help="rows in the hot-rule ranking (default 10)",
    )
    profile.add_argument(
        "--trace",
        metavar="OUT.jsonl",
        help="also stream the raw event trace to this JSONL file",
    )
    profile.set_defaults(handler=cmd_profile)

    explain = sub.add_parser(
        "explain",
        help="solve and render the derivation tree of one model atom "
        "(engine.provenance)",
    )
    explain.add_argument(
        "args",
        nargs="+",
        metavar="FILE ... ATOM",
        help="rule files followed by the atom to explain, e.g. "
        "\"s(a, c)\" (key arguments only for cost predicates)",
    )
    explain.add_argument(
        "--program",
        help="start from a built-in paper program (see 'examples')",
    )
    explain.add_argument("--facts", help="extra facts file")
    explain.add_argument(
        "--method",
        choices=["naive", "seminaive", "greedy", "auto"],
        default="naive",
    )
    explain.add_argument(
        "--check",
        choices=["strict", "lenient", "none"],
        default="strict",
    )
    explain.add_argument("--max-iterations", type=int, default=100_000)
    explain.add_argument(
        "--plan", choices=["smart", "off"], default="smart"
    )
    explain.add_argument(
        "--pushdown", choices=["auto", "off"], default="auto"
    )
    explain.add_argument(
        "--max-depth",
        type=int,
        default=12,
        help="cut the derivation tree at this depth (default 12)",
    )
    explain.set_defaults(handler=cmd_explain)

    validate_trace = sub.add_parser(
        "validate-trace",
        help="check JSONL trace files against the telemetry event schema "
        "(any known version; unknown versions fail, naming the "
        "version found)",
    )
    validate_trace.add_argument(
        "files", nargs="+", help="JSONL trace files (from --trace)"
    )
    validate_trace.set_defaults(handler=cmd_validate_trace)

    metrics = sub.add_parser(
        "metrics",
        help="solve under the tracer and print the mergeable metric "
        "instruments — counters, gauges, p50/p95/p99 histograms — "
        "as text, JSON, or Prometheus exposition "
        "(docs/OBSERVABILITY.md)",
    )
    add_common(metrics)
    metrics.add_argument(
        "--method",
        choices=["naive", "seminaive", "greedy", "auto"],
        default="auto",
    )
    metrics.add_argument(
        "--check",
        choices=["strict", "lenient", "none"],
        default="strict",
    )
    metrics.add_argument("--max-iterations", type=int, default=100_000)
    metrics.add_argument(
        "--plan", choices=["smart", "off", "sharded"], default="smart"
    )
    metrics.add_argument("--shards", type=int, default=None)
    metrics.add_argument("--workers", type=int, default=None)
    metrics.add_argument(
        "--pushdown", choices=["auto", "off"], default="auto"
    )
    metrics.add_argument(
        "--storage", choices=["boxed", "columnar"], default="boxed"
    )
    metrics.add_argument(
        "--format",
        choices=["text", "json", "prometheus"],
        default="text",
    )
    metrics.set_defaults(handler=cmd_metrics)

    postmortem = sub.add_parser(
        "postmortem",
        help="render a flight-recorder dump (from an abnormally ended "
        "solve) as a human-readable debrief",
    )
    postmortem.add_argument(
        "file", help="a dump written by solve --flight (JSONL)"
    )
    postmortem.add_argument(
        "--tail",
        type=int,
        default=10,
        help="events to show from the end of the ring (default 10)",
    )
    postmortem.set_defaults(handler=cmd_postmortem)

    trend = sub.add_parser(
        "trend",
        help="aggregate committed BENCH_*.json reports into per-workload "
        "time series with step-regression flags "
        "(docs/PERFORMANCE.md)",
    )
    trend.add_argument(
        "files",
        nargs="*",
        help="bench reports in trajectory order (default: BENCH_*.json "
        "in --dir, numerically ordered)",
    )
    trend.add_argument(
        "--dir", default=".", help="where to glob BENCH_*.json (default .)"
    )
    trend.add_argument(
        "--select",
        choices=["all", "quick", "full"],
        default="all",
        help="restrict to quick or full-size reports (default: all)",
    )
    trend.add_argument(
        "--format", choices=["text", "json"], default="text"
    )
    trend.add_argument(
        "--tolerance",
        type=float,
        default=3.0,
        help="flag a step as a regression past this slowdown factor "
        "between consecutive same-size runs (default 3.0)",
    )
    trend.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any step is flagged (default: always exit 0)",
    )
    trend.set_defaults(handler=cmd_trend)

    analyze = sub.add_parser(
        "analyze", help="run the static pipeline (Defs 2.5, 2.10, 4.5)"
    )
    add_common(analyze)
    analyze.set_defaults(handler=cmd_analyze)

    optimize = sub.add_parser(
        "optimize",
        help="print the aggregate-pushdown rewrite: MAD8xx verdicts on "
        "stderr, the rewritten program on stdout "
        "(see docs/OPTIMIZATION.md)",
    )
    add_common(optimize)
    optimize.set_defaults(handler=cmd_optimize)

    shard_plan = sub.add_parser(
        "shard-plan",
        help="print per-component shard-safety verdicts (MAD9xx) with "
        "witness chains and the proven partitioning keys "
        "(see docs/PARALLELISM.md)",
    )
    add_common(shard_plan)
    shard_plan.add_argument(
        "--format", choices=["text", "json"], default="text"
    )
    shard_plan.set_defaults(handler=cmd_shard_plan)

    lint = sub.add_parser(
        "lint",
        help="coded diagnostics (MAD1xx safety, MAD2xx conflicts, "
        "MAD3xx admissibility, ...); exit code = max severity",
    )
    lint.add_argument(
        "files", nargs="*", help="rule files in the library's syntax"
    )
    lint.add_argument(
        "--program",
        help="lint a built-in paper program (see 'examples')",
    )
    lint.add_argument(
        "--catalog",
        action="store_true",
        help="lint every built-in paper program and fail unless the "
        "findings match the paper's own classification",
    )
    lint.add_argument(
        "--format", choices=["text", "json"], default="text"
    )
    lint.add_argument(
        "--explain",
        action="store_true",
        help="append the violated definition and paper reference to "
        "each finding",
    )
    lint.add_argument(
        "--fix",
        action="store_true",
        help="apply machine-applicable repairs in place (stdin → stdout)",
    )
    lint.add_argument(
        "--diff",
        action="store_true",
        help="with --fix: print a unified diff instead of writing",
    )
    lint.add_argument(
        "--check",
        action="store_true",
        help="with --fix: write nothing, exit 1 iff fixes would apply",
    )
    lint.set_defaults(handler=cmd_lint)

    examples = sub.add_parser("examples", help="list built-in paper programs")
    examples.set_defaults(handler=cmd_examples)

    repl = sub.add_parser(
        "repl",
        help="line-oriented shell: load rules and CSV/JSONL facts, "
        "solve, query — pipeable (repro repl < script)",
    )
    add_common(repl)
    repl.add_argument(
        "--method",
        choices=["naive", "seminaive", "greedy", "auto"],
        default="auto",
    )
    repl.add_argument(
        "--storage", choices=["boxed", "columnar"], default="boxed"
    )
    repl.set_defaults(handler=cmd_repl)

    serve = sub.add_parser(
        "serve",
        help="run the resilient solve service: named databases over "
        "HTTP/JSON with per-request budgets, admission control and "
        "SIGTERM drain-and-checkpoint (docs/SERVING.md)",
    )
    serve.add_argument(
        "databases",
        nargs="*",
        metavar="NAME=FILE",
        help="rule files to host, each as one named database "
        "(bare FILE uses its stem as the name)",
    )
    serve.add_argument(
        "--program",
        action="append",
        help="also host a built-in paper program (repeatable)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8750,
        help="listen port; 0 picks an ephemeral port (default 8750)",
    )
    serve.add_argument(
        "--port-file",
        metavar="PATH",
        help="write the bound port here once listening (for scripts "
        "starting the server with --port 0)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=4,
        help="concurrent solves (worker threads, default 4)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=8,
        help="admitted-but-waiting requests tolerated before the server "
        "sheds with 503 + Retry-After (default 8)",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="server-side default per-request budget (default 30)",
    )
    serve.add_argument(
        "--max-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="hard cap on client-requested budgets (default: none)",
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="after SIGTERM, seconds in-flight solves may finish before "
        "their cancel tokens are tripped (default 5)",
    )
    serve.add_argument(
        "--flight-size",
        type=int,
        default=256,
        metavar="N",
        help="per-request flight-recorder ring capacity (default 256)",
    )
    serve.add_argument(
        "--flight-dir",
        default=".",
        help="directory for postmortem dumps of crashed requests",
    )
    serve.add_argument(
        "--checkpoint-dir",
        default=".",
        help="directory for checkpoints of interrupted solves "
        "('' disables checkpointing)",
    )
    serve.add_argument(
        "--method",
        choices=["naive", "seminaive", "greedy", "auto"],
        default="auto",
        help="default evaluation mode (requests may override)",
    )
    serve.add_argument(
        "--plan",
        choices=["smart", "off", "sharded"],
        default="smart",
        help="default plan; 'sharded' degrades to sequential per "
        "request because budgeted solves never fork "
        "(docs/PARALLELISM.md)",
    )
    serve.add_argument(
        "--storage", choices=["boxed", "columnar"], default="boxed"
    )
    serve.set_defaults(handler=cmd_serve)

    bench = sub.add_parser(
        "bench",
        help="run the tracked scaling workloads headlessly and write a "
        "machine-readable report (see docs/PERFORMANCE.md)",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="small sizes for CI smoke runs",
    )
    bench.add_argument(
        "--plan", choices=["smart", "off", "sharded"], default="smart"
    )
    bench.add_argument(
        "--pushdown", choices=["auto", "off"], default="auto"
    )
    bench.add_argument(
        "--storage",
        choices=["boxed", "columnar"],
        default="boxed",
        help="relation backend for every workload (docs/STORAGE.md); "
        "the *_columnar workloads pin columnar regardless, so a default "
        "run already records a boxed/columnar pair per dataset workload",
    )
    bench.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="take the best of N runs per workload (default 3)",
    )
    bench.add_argument(
        "--workload",
        action="append",
        help="run only this workload (repeatable)",
    )
    bench.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="budget each workload solve; overrunning workloads are "
        "recorded with their supervisor status instead of hanging CI",
    )
    bench.add_argument(
        "--out", help="write the JSON report here instead of stdout"
    )
    bench.add_argument(
        "--compare",
        help="fail (exit 1) when a workload regresses past --tolerance "
        "times this baseline report, or derives a different model",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=3.0,
        help="slowdown factor tolerated by --compare (default 3.0)",
    )
    bench.add_argument(
        "--mem-tolerance",
        type=float,
        default=2.0,
        help="memory-growth factor tolerated by --compare on "
        "mem_peak_bytes / bytes_per_atom (default 2.0; allocation "
        "counts are steadier than wall time, so the gate is tighter)",
    )
    bench.set_defaults(handler=cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on bad flags; fold that into the usage class
        # (1) and keep 0 for --help.
        return EXIT_OK if exc.code in (0, None) else EXIT_USAGE
    try:
        return args.handler(args)
    except CliUsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except (
        ParseError,
        ProgramError,
        CostConsistencyError,
        DataLoadError,
    ) as exc:
        # The *input* is at fault: parse errors, rejected analysis
        # (safety/typing/admissibility), cost-consistency violations,
        # MAD10xx-coded data-file rejections.
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_DIAGNOSTICS
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_RUNTIME
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
