#!/usr/bin/env python3
"""Information-flow / taint analysis with custom cost lattices.

The paper's framework is not just min/sum/count: *any* complete lattice
of cost values with a monotonic aggregate qualifies.  This example builds
a small static-analysis tool out of two user-defined lattices — the shape
modern lattice-Datalog systems (Flix, Datafun) made mainstream, and which
this 1992 paper anticipates:

1. **security levels** — a finite chain public ⊑ internal ⊑ secret; each
   variable's level is the least upper bound of everything flowing into
   it (the generic ``LatticeJoin`` aggregate — always monotonic);
2. **taint sets** — a powerset lattice over sources; each variable
   accumulates the *set* of sources that can reach it (Figure 1's
   ``union`` row, instantiated for our universe).

Both analyses run over the same dataflow graph, with cycles (loops in the
analysed program) handled by the minimal-model semantics exactly like
shortest-path cycles.

Run:  python examples/taint_analysis.py
"""

from repro import Database
from repro.aggregates import LatticeJoin, Union, verify_declared_class
from repro.lattices import FiniteChain, PowersetUnion

#: The analysed program's dataflow: flow(src, dst) = "src's value reaches
#: dst".  Note the loop between acc and tmp (a while-loop in the source).
FLOWS = [
    ("password", "hash"),
    ("hash", "session"),
    ("user_id", "session"),
    ("user_id", "log_line"),
    ("request", "tmp"),
    ("tmp", "acc"),
    ("acc", "tmp"),          # the loop
    ("acc", "response"),
    ("session", "response"),
]

#: Where values enter the program, with their classification.
SOURCES = [
    ("password", "secret"),
    ("user_id", "internal"),
    ("request", "public"),
]

LEVELS = FiniteChain(["public", "internal", "secret"], name="seclevel")
TAINTS = PowersetUnion([name for name, _ in SOURCES], name="taints")


RULES = """
    @pred flow/2.
    @cost source_level/2 : seclevel.
    @cost source_taint/2 : taints.

    % Sources are entry points, never flow destinations — this is what
    % lets the source rule and the lub rule coexist (Definition 2.10's
    % integrity-constraint discharge, like Example 2.6's 'direct').
    @constraint source_level(X, L), sink_of(X).
    @constraint source_taint(X, T), sink_of(X).
    % level/taint are *default-value* predicates so the lub over a cyclic
    % dataflow is always defined (the Example 4.4 move): everything starts
    % at the lattice bottom ('public' / the empty taint set).
    @cost level/2 : seclevel default.
    @cost taint/2 : taints default.

    % A variable's level: lub of its source level (if any) and the levels
    % of everything flowing in.  Default-value predicates make the lub
    % well-defined from the start (everything begins at 'public' = ⊥).
    level(X, L) <- source_level(X, L).
    level(X, L) <- sink_of(X), L = lub_level{D : flow(Y, X), level(Y, D)}.

    % Taint: the set of sources reaching each variable.  Source variables
    % carry their own singleton {X} as an EDB cost value.
    taint(X, T) <- source_taint(X, T).
    taint(X, T) <- sink_of(X), T = union_taints{D : flow(Y, X), taint(Y, D)}.

    sink_of(X) <- flow(Y, X).
"""


def main() -> None:
    db = Database(name="taint")
    db.register_lattice("seclevel", LEVELS)
    db.register_lattice("taints", TAINTS)

    lub_level = LatticeJoin(LEVELS, name="lub_level")
    union_taints = Union(TAINTS.universe)
    union_taints.name = "union_taints"
    for fn in (lub_level, union_taints):
        for verdict in verify_declared_class(fn):
            assert verdict.holds, str(verdict)  # trust, but verify
        db.register_aggregate(fn)

    db.load(RULES)

    variables = sorted({v for f in FLOWS for v in f})
    for src, dst in FLOWS:
        db.add_fact("flow", src, dst)
    for name, lvl in SOURCES:
        db.add_fact("source_level", name, lvl)
        db.add_fact("source_taint", name, frozenset({name}))

    report = db.analyze()
    print(f"admissible/monotonic: {report.admissible}")
    result = db.solve()

    level = {k[0]: v for k, v in result["level"].items()}
    taint = {k[0]: v for k, v in result["taint"].items()}
    print()
    print(f"{'variable':10s} {'level':9s} tainted by")
    print("-" * 44)
    for v in variables:
        lv = level.get(v, "public")
        tn = ", ".join(sorted(taint.get(v, frozenset()))) or "-"
        print(f"{v:10s} {lv:9s} {tn}")

    # The session mixes hash (secret, via password) and user_id.
    assert level["session"] == "secret"
    assert taint["session"] == frozenset({"password", "user_id"})
    # The response inherits everything — including through the loop.
    assert level["response"] == "secret"
    assert taint["response"] == frozenset({"password", "user_id", "request"})
    # The loop variables only ever see the public request (their level
    # stays at the implicit default 'public' — outside the stored core).
    assert level.get("acc", "public") == "public"
    assert level.get("tmp", "public") == "public"
    assert taint["acc"] == frozenset({"request"})
    print()
    print("secret data reaches: "
          + ", ".join(sorted(v for v in variables if level.get(v) == "secret")))


if __name__ == "__main__":
    main()
