#!/usr/bin/env python3
"""Company control (Example 2.7): who really controls whom?

A holding-company scenario: direct share ownership is public, but control
is *recursive* — owning companies that own companies.  The program sums
share fractions through the control relation itself, a textbook case of
recursion through aggregation.

Also reproduces the paper's §5.6 discussion instance, where two companies
control each other through crossed 60 % stakes while an outside investor
controls neither.

Run:  python examples/corporate_control.py
"""

from repro.programs import company_control
from repro.workloads import company_control_oracle, random_ownership


def banner(text: str) -> None:
    print()
    print(f"== {text} ==")


def show_controls(result) -> None:
    for x, y in sorted(result["c"]):
        fraction = result["m"].get((x, y))
        rendered = f"{fraction:.0%}" if fraction is not None else "?"
        print(f"  {x} controls {y}  (holds {rendered} of its shares)")


def main() -> None:
    banner("a holding pyramid")
    # holdco owns 60% of midco; midco owns 40% of opco; holdco itself owns
    # another 20% of opco.  Neither stake alone controls opco — together
    # they do, but only BECAUSE holdco controls midco first.
    shares = [
        ("holdco", "midco", 0.60),
        ("midco", "opco", 0.40),
        ("holdco", "opco", 0.20),
        ("outsider", "opco", 0.40),
    ]
    db = company_control.database({"s": shares})
    result = db.solve()
    show_controls(result)
    assert ("holdco", "opco") in result["c"]
    assert ("outsider", "opco") not in result["c"]

    banner("the §5.6 crossed-ownership instance")
    crossed = [
        ("a", "b", 0.3),
        ("a", "c", 0.3),
        ("b", "c", 0.6),
        ("c", "b", 0.6),
    ]
    result = company_control.database({"s": crossed}).solve()
    show_controls(result)
    print("  c(a,b) and c(a,c) are FALSE for us —")
    print("  Van Gelder's translation would leave them undefined (§5.6).")
    assert ("a", "b") not in result["c"]

    banner("a synthetic market, cross-checked against a direct oracle")
    market = random_ownership(30, seed=2024, chain_length=5)
    result = company_control.database({"s": market}).solve(method="seminaive")
    oracle = company_control_oracle(market)
    assert set(result["c"]) == oracle
    print(f"  {len(market)} share positions, {len(oracle)} control pairs,")
    print(f"  engine agrees with the independent fixpoint oracle exactly.")
    chain = [pair for pair in sorted(oracle) if pair[0] == 0]
    print(f"  planted chain from company 0 reaches: {[y for _, y in chain]}")


if __name__ == "__main__":
    main()
