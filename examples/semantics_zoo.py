#!/usr/bin/env python3
"""The semantics zoo: one cyclic instance, five semantics (Section 5).

Takes shortest paths on a small cyclic graph and evaluates it under every
semantics the paper compares against:

1. our monotonic minimal model (total, unique);
2. Kemp–Stuckey well-founded with aggregates (undefined on the cycle);
3. Kemp–Stuckey stable models (multiple, incomparable);
4. the §5.5 alternative stable semantics (selects our model);
5. Ganguly–Greco–Zaniolo's min→negation rewrite + classic WF (agrees,
   but needs a finite cost domain and pays for exploring it).

Run:  python examples/semantics_zoo.py
"""

from repro.engine import Interpretation, solve
from repro.programs import shortest_path
from repro.semantics import (
    alternating_fixpoint,
    alternative_stable_model,
    is_stable_model,
    kemp_stuckey_wf,
    rewrite_extrema,
)
from repro.workloads import dijkstra_all_pairs

#: Example 3.1's instance: one real arc plus a zero-cost self-loop.
ARCS = [("a", "b", 1), ("b", "b", 0)]


def banner(n, text):
    print()
    print(f"[{n}] {text}")
    print("-" * (4 + len(text)))


def main() -> None:
    program = shortest_path.database().program
    edb = Interpretation(program.declarations)
    for arc in ARCS:
        edb.add_fact("arc", *arc)
    print(f"instance: {ARCS}  (b has a zero-cost self-loop — cyclic!)")

    banner(1, "monotonic minimal model (this paper)")
    ours = solve(program, edb).model
    for (x, y), c in sorted(ours["s"].items()):
        print(f"  s({x},{y}) = {c}")
    print("  total, unique, matches true shortest paths.")

    banner(2, "Kemp–Stuckey well-founded with aggregates (§5.3)")
    wf = kemp_stuckey_wf(program, edb)
    print(f"  true atoms: {wf.true.total_size()}, "
          f"undefined: {len(wf.undefined)}")
    for predicate, key in sorted(wf.undefined, key=repr):
        print(f"  undefined: {predicate}{key}")
    print("  the cycle blocks 'fully defined' aggregation: s stays 3-valued.")

    banner(3, "Kemp–Stuckey stable models (§5.3)")
    for label, ab in (("M1", 1), ("M2", 0)):
        candidate = Interpretation(program.declarations)
        for row in [
            ("a", "direct", "b", 1),
            ("b", "direct", "b", 0),
            ("a", "b", "b", ab),
            ("b", "b", "b", 0),
        ]:
            candidate.relation("path").costs[row[:-1]] = row[-1]
        candidate.relation("s").costs[("a", "b")] = ab
        candidate.relation("s").costs[("b", "b")] = 0
        stable = is_stable_model(program, edb, candidate)
        print(f"  {label} (s(a,b)={ab}): stable = {stable}")
    print("  two incomparable stable models — no unique answer.")

    banner(4, "the §5.5 alternative stable semantics")
    alternative = alternative_stable_model(program, edb)
    print(f"  unique model with s(a,b) = {alternative['s'][('a','b')]} "
          f"— exactly our minimal model: {alternative == ours}")

    banner(5, "Ganguly min→negation rewrite + classic WF (§5.4)")
    rewritten = rewrite_extrema(program, cost_bound=5)
    edb_rw = Interpretation(rewritten.declarations)
    for arc in ARCS:
        edb_rw.add_fact("arc", *arc)
    wf_rw = alternating_fixpoint(rewritten, edb_rw)
    s_rows = sorted(wf_rw.true["s"])
    print(f"  rewritten program is normal (no aggregates), "
          f"{len(rewritten.rules)} rules")
    print(f"  WF model: total={wf_rw.total}, s = {s_rows}")
    print("  agrees with ours — but only under a finite cost domain")
    print("  (the footnote-2 caveat), explored exhaustively.")

    assert {(x, y): c for (x, y, c) in s_rows} == dict(ours["s"])
    oracle = dijkstra_all_pairs(ARCS)
    assert dict(ours["s"]) == oracle


if __name__ == "__main__":
    main()
