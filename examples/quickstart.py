#!/usr/bin/env python3
"""Quickstart: recursion through aggregation in five minutes.

Defines the paper's shortest-path program (Example 2.6), runs the static
analysis pipeline (is it safe? conflict-free? certifiably monotonic?),
solves for the unique minimal model, and queries it.

Run:  python examples/quickstart.py
"""

from repro import Database

RULES = """
    % Cost domains: (R ∪ {±∞}, ≥) — "⊑-larger" means numerically smaller,
    % so the minimal model carries the SHORTEST paths (Example 3.1's
    % "Beware!").
    @cost arc/3  : reals_ge.
    @cost path/4 : reals_ge.
    @cost s/3    : reals_ge.

    % The constant `direct` never appears as a source node — this is what
    % lets the two path rules coexist without conflicting cost values
    % (Definition 2.10, condition 2).
    @constraint arc(direct, Z, C).

    path(X, direct, Y, C) <- arc(X, Y, C).
    path(X, Z, Y, C) <- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
    s(X, Y, C) <- C =r min{D : path(X, Z, Y, D)}.
"""


def main() -> None:
    db = Database(name="quickstart")
    db.load(RULES)

    # A cyclic flight network — the case stratified aggregation cannot
    # express and the well-founded semantics leaves undefined.
    flights = [
        ("sfo", "jfk", 5.5),
        ("jfk", "lhr", 7.0),
        ("lhr", "sfo", 11.0),  # back edge: the graph is one big cycle
        ("sfo", "lhr", 14.0),  # direct but slow
        ("jfk", "sfo", 6.5),
    ]
    for origin, destination, hours in flights:
        db.add_fact("arc", origin, destination, hours)

    print("== static analysis (Definitions 2.5, 2.10, 4.5) ==")
    print(db.analyze())
    print()

    result = db.solve()
    print("== unique minimal model: the s relation ==")
    for (origin, destination), hours in sorted(result["s"].items()):
        print(f"  fastest {origin} -> {destination}: {hours} h")

    fastest = result["s"][("sfo", "lhr")]
    assert fastest == 12.5, fastest  # via jfk, beating the 14 h direct hop
    print()
    print(f"sfo->lhr goes via jfk ({fastest} h), beating the direct 14.0 h.")
    print(f"solved in {result.total_iterations} T_P iterations.")


if __name__ == "__main__":
    main()
