#!/usr/bin/env python3
"""Party invitations (Example 4.3): threshold cascades on a cyclic
social graph.

Each guest comes only if at least K people they know are coming.  Because
guests' conditions refer to each other *cyclically*, the program is not
modularly stratified — yet it is monotonic, so the minimal model decides
everyone.  The example also demonstrates why the ``=``-form aggregate is
essential: guests requiring nobody must count an *empty* group as 0, not
fail on it.

Run:  python examples/party_planner.py
"""

from repro.programs import party_invitations
from repro.workloads import party_oracle, random_party

GUESTS = {
    # guest: how many known attendees they require
    "host": 0,
    "alice": 1,   # comes if one friend does
    "bob": 1,
    "carol": 2,
    "dave": 1,
    "erin": 3,    # needs a crowd
}

KNOWS = [
    ("alice", "host"),
    ("bob", "alice"),
    ("alice", "bob"),     # alice and bob know each other (a cycle!)
    ("carol", "alice"),
    ("carol", "bob"),
    ("dave", "erin"),     # dave only knows erin...
    ("erin", "alice"),
    ("erin", "bob"),
    ("erin", "carol"),
]


def main() -> None:
    db = party_invitations.database(
        {"knows": KNOWS, "requires": list(GUESTS.items())}
    )
    print("== analysis ==")
    report = db.analyze()
    print(f"admissible/monotonic: {report.admissible}")
    print(f"aggregate-stratified: {report.aggregate_stratified}  "
          f"(cyclic 'knows' — stratified approaches are out)")
    print()

    result = db.solve()
    coming = {g for (g,) in result["coming"]}
    print("== who is coming ==")
    for guest, k in GUESTS.items():
        status = "coming" if guest in coming else "stays home"
        known = [b for a, b in KNOWS if a == guest]
        attending = sorted(set(known) & coming)
        print(
            f"  {guest:6s} requires {k}, knows {len(known)} "
            f"(attending: {', '.join(attending) or 'nobody'}) -> {status}"
        )

    # The cascade: host seeds alice; alice+bob's mutual edge fires bob;
    # carol's 2 are met; erin's 3 are met; dave only knows erin -> comes.
    assert coming == {"host", "alice", "bob", "carol", "erin", "dave"}

    print()
    print("== scale check against the direct cascade oracle ==")
    knows, requires = random_party(200, seed=7)
    result = party_invitations.database(
        {"knows": knows, "requires": list(requires.items())}
    ).solve(method="seminaive")
    engine = {g for (g,) in result["coming"]}
    assert engine == party_oracle(knows, requires)
    print(f"  200 guests, {len(knows)} edges: {len(engine)} attending — "
          f"matches the oracle exactly.")


if __name__ == "__main__":
    main()
