#!/usr/bin/env python3
"""Cyclic circuit analysis (Example 4.4): minimal vs maximal behaviour.

Evaluates AND/OR circuits *with feedback loops* using pseudo-monotonic
aggregation over a default-value predicate.  The default value decides
how a cycle with no external drive settles:

* default 0 on ``(B, ≤)`` — the paper's *minimal* behaviour: undriven
  loops read false;
* default 1 on ``(B, ≥)`` — the *maximal* behaviour the example sketches
  ("change the default value for t from 0 to 1"): undriven loops read
  true.  The default must be the lattice bottom (Section 2.3.2), so
  maximal behaviour means the dual boolean lattice — and dually oriented
  aggregate functions (AND becomes the monotonic one, OR the
  pseudo-monotonic one).

Run:  python examples/circuit_analysis.py
"""

from repro import Database

MINIMAL = """
    @pred gate/2.
    @pred connect/2.
    @cost input/2 : bool_le.
    @default t/2 : bool_le.
    @constraint gate(G, or), gate(G, and).
    @constraint input(W, C), gate(W, T).
    t(W, C) <- input(W, C).
    t(G, C) <- gate(G, or),  C = or{D : connect(G, W), t(W, D)}.
    t(G, C) <- gate(G, and), C = and_le{D : connect(G, W), t(W, D)}.
"""

# The dual program: lattice (B, ≥) has bottom 1, so the default is TRUE.
# Against ≥, AND is the monotonic aggregate (Figure 1 row 5) and OR the
# pseudo-monotonic one — the orientations swap with the order.
MAXIMAL = """
    @pred gate/2.
    @pred connect/2.
    @cost input/2 : bool_ge.
    @default t/2 : bool_ge.
    @constraint gate(G, or), gate(G, and).
    @constraint input(W, C), gate(W, T).
    t(W, C) <- input(W, C).
    t(G, C) <- gate(G, and), C = and{D : connect(G, W), t(W, D)}.
    t(G, C) <- gate(G, or),  C = or_ge{D : connect(G, W), t(W, D)}.
"""

#: An SR-latch-like core: two cross-coupled OR gates with one external
#: input each, plus a self-feeding AND gate nobody drives.
CIRCUIT = {
    "gate": [("q", "or"), ("qbar", "or"), ("lonely", "and")],
    "connect": [
        ("q", "set"),
        ("q", "qbar"),
        ("qbar", "q"),
        ("lonely", "lonely"),
    ],
}


def evaluate(rules: str, inputs, *, maximal=False):
    # The maximal orientation uses the built-in or_ge aggregate: OR viewed
    # against (B, ≥) — pseudo-monotonic, admissible here because t is a
    # default-value predicate (the dual of the and_le story).
    db = Database(name="circuit")
    db.load(rules)
    for gate, kind in CIRCUIT["gate"]:
        db.add_fact("gate", gate, kind)
    for gate, wire in CIRCUIT["connect"]:
        db.add_fact("connect", gate, wire)
    for wire, value in inputs:
        db.add_fact("input", wire, value)
    result = db.solve()
    default = 1 if maximal else 0
    wires = ["set", "q", "qbar", "lonely"]
    return {
        w: next(
            (v for (key,), v in result["t"].items() if key == w), default
        )
        for w in wires
    }


def main() -> None:
    print("circuit: q = OR(set, qbar); qbar = OR(q); lonely = AND(lonely)")
    print()
    header = f"{'scenario':34s} {'set':>4} {'q':>3} {'qbar':>5} {'lonely':>7}"
    print(header)
    print("-" * len(header))
    for label, inputs, maximal in [
        ("minimal, set=0 (undriven loops)", [("set", 0)], False),
        ("minimal, set=1 (latch fires)", [("set", 1)], False),
        ("maximal, set=0 (loops float high)", [("set", 0)], True),
    ]:
        t = evaluate(MAXIMAL if maximal else MINIMAL, inputs, maximal=maximal)
        print(
            f"{label:34s} {t['set']:>4} {t['q']:>3} {t['qbar']:>5} "
            f"{t['lonely']:>7}"
        )

    minimal_idle = evaluate(MINIMAL, [("set", 0)])
    maximal_idle = evaluate(MAXIMAL, [("set", 0)], maximal=True)
    assert minimal_idle["q"] == 0 and minimal_idle["lonely"] == 0
    assert maximal_idle["q"] == 1 and maximal_idle["lonely"] == 1
    fired = evaluate(MINIMAL, [("set", 1)])
    assert fired["q"] == 1 and fired["qbar"] == 1 and fired["lonely"] == 0
    print()
    print("minimal behaviour: undriven feedback reads FALSE (default 0 = ⊥ of (B,≤));")
    print("maximal behaviour: the dual lattice (B,≥) has bottom 1 — loops read TRUE.")


if __name__ == "__main__":
    main()
