"""Legacy setuptools shim.

The package is fully described by pyproject.toml; this file exists so that
``pip install -e .`` works in offline environments where PEP 517 build
isolation cannot download a build backend.
"""

from setuptools import setup

setup()
